// Daemon survivability: submission-clock deadlines (queued AND running
// jobs), graceful drain, the wait-during-shutdown signal, and the
// acceptance pin for pinned-revision leases — a stalled solve times out
// and its revision pin returns to steady state via lease expiry.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/elpc.hpp"
#include "daemon/client.hpp"
#include "daemon/job_manager.hpp"
#include "daemon/socket_server.hpp"
#include "graph/generators.hpp"
#include "mapping/mapper.hpp"
#include "pipeline/generator.hpp"
#include "service/batch_engine.hpp"
#include "util/rng.hpp"

namespace elpc::daemon {
namespace {

graph::Network make_network(std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::random_connected_network(rng, 10, 50,
                                         graph::AttributeRanges{});
}

service::SolveJob make_job(const std::string& id, std::uint64_t pseed,
                           service::Objective objective) {
  util::Rng rng(pseed);
  service::SolveJob job;
  job.id = id;
  job.network = "net";
  job.pipeline = pipeline::random_pipeline(rng, 4, {});
  job.source = 0;
  job.destination = 9;
  job.objective = objective;
  job.cost = service::default_cost(objective);
  return job;
}

std::string socket_path(const std::string& tag) {
  return ::testing::TempDir() + "/elpc_surv_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// The hung-solve model: sleeps through its whole hang ignoring the
/// abort probe (a genuinely stuck solve — a wedged syscall, a pathological
/// input), then finally reaches a probe and aborts.  Long enough after
/// the job's deadline + lease that the lease sweep must act first.
class HungMapper final : public mapping::Mapper {
 public:
  HungMapper(core::AbortProbe abort, std::chrono::milliseconds hang)
      : abort_(std::move(abort)), hang_(hang) {}

  [[nodiscard]] std::string name() const override { return "hang"; }
  [[nodiscard]] mapping::MapResult min_delay(
      const mapping::Problem&) const override {
    return stall();
  }
  [[nodiscard]] mapping::MapResult max_frame_rate(
      const mapping::Problem&) const override {
    return stall();
  }

 private:
  mapping::MapResult stall() const {
    std::this_thread::sleep_for(hang_);
    if (abort_) {
      const core::SolveAbort reason = abort_();
      if (reason != core::SolveAbort::kNone) {
        throw core::SolveAborted(reason, "hung solve reached a probe");
      }
    }
    return mapping::MapResult::infeasible("hung mapper never solves");
  }

  core::AbortProbe abort_;
  std::chrono::milliseconds hang_;
};

/// Factory stalling before the stock mapper is even built: the job burns
/// its budget before the first DP column.
service::BatchEngineOptions slow_start_factory(
    std::chrono::milliseconds stall) {
  service::BatchEngineOptions options;
  options.factory = [stall](const service::SolveJob&,
                            const service::MapperContext& ctx) {
    std::this_thread::sleep_for(stall);
    return service::make_engine_elpc(ctx);
  };
  return options;
}

TEST(JobManager, DeadlineExpiresQueuedJobEvenWhilePaused) {
  service::BatchEngine engine;
  engine.register_network("net", make_network(3));
  JobManagerOptions options;
  options.start_paused = true;  // the job can never dispatch
  JobManager manager(engine, options);

  service::SolveJob job = make_job("late", 80, service::Objective::kMinDelay);
  job.deadline_ms = 30;
  const Ticket ticket = manager.submit(job);

  const JobStatus status = manager.wait(ticket);
  EXPECT_EQ(status.state, JobState::kTimedOut);
  EXPECT_EQ(status.result.error, service::kTimedOutError);
  const JobManagerStats stats = manager.stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.queued, 0u);
}

TEST(JobManager, RunningJobStoppedByItsDeadline) {
  service::BatchEngine engine(
      slow_start_factory(std::chrono::milliseconds(100)));
  engine.register_network("net", make_network(3));
  JobManager manager(engine);

  service::SolveJob job =
      make_job("over", 81, service::Objective::kMaxFrameRate);
  job.deadline_ms = 20;
  const Ticket ticket = manager.submit(job);
  const JobStatus status = manager.wait(ticket);
  EXPECT_EQ(status.state, JobState::kTimedOut);
  EXPECT_EQ(status.result.error, service::kTimedOutError);
  EXPECT_EQ(manager.stats().timed_out, 1u);

  // A deadline-free job right after is untouched.
  const Ticket ok = manager.submit(
      make_job("ok", 82, service::Objective::kMinDelay));
  EXPECT_EQ(manager.wait(ok).state, JobState::kDone);
}

TEST(JobManager, DrainFinishesWorkAndClosesAdmission) {
  service::BatchEngine engine;
  engine.register_network("net", make_network(3));
  JobManagerOptions options;
  options.start_paused = true;  // everything queues until the drain
  JobManager manager(engine, options);

  std::vector<Ticket> tickets;
  for (int i = 0; i < 3; ++i) {
    tickets.push_back(manager.submit(
        make_job("j" + std::to_string(i), 90 + i,
                 service::Objective::kMinDelay)));
  }

  // Drain lifts the pause, runs the queue dry, and reports idle.
  const DrainReport report = manager.drain(/*timeout_ms=*/20000);
  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.timed_out, 0u);
  EXPECT_EQ(report.queued, 0u);
  EXPECT_EQ(report.running, 0u);
  for (const Ticket ticket : tickets) {
    EXPECT_EQ(manager.poll(ticket).state, JobState::kDone);
  }

  // Admission is closed for good.
  EXPECT_TRUE(manager.draining());
  EXPECT_TRUE(manager.stats().draining);
  EXPECT_THROW((void)manager.submit(make_job(
                   "rejected", 99, service::Objective::kMinDelay)),
               std::runtime_error);
  // A second drain on an idle manager reports idle again.
  EXPECT_TRUE(manager.drain(1000).drained);
}

TEST(JobManager, DrainBudgetTimesOutStragglers) {
  service::BatchEngine engine(
      slow_start_factory(std::chrono::milliseconds(300)));
  engine.register_network("net", make_network(3));
  JobManagerOptions options;
  options.start_paused = true;
  JobManager manager(engine, options);

  const Ticket slow = manager.submit(
      make_job("slow", 95, service::Objective::kMaxFrameRate));
  // The drain budget is far below the 300 ms stall: the job must be
  // forced to kTimedOut rather than holding the drain hostage.
  const DrainReport report = manager.drain(/*timeout_ms=*/50);
  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.timed_out, 1u);
  EXPECT_EQ(manager.poll(slow).state, JobState::kTimedOut);
}

TEST(JobManager, WaitReportsShutdownForAJobThatWillNeverRun) {
  service::BatchEngine engine;
  engine.register_network("net", make_network(3));
  JobManagerOptions options;
  options.start_paused = true;
  JobManager manager(engine, options);

  const Ticket ticket = manager.submit(
      make_job("stuck", 96, service::Objective::kMinDelay));
  JobStatus released;
  std::thread waiter([&manager, ticket, &released]() {
    released = manager.wait(ticket);
  });
  // Give the waiter time to block, then stop the manager under it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  manager.stop();
  waiter.join();
  EXPECT_FALSE(released.terminal());
  EXPECT_TRUE(released.shutting_down);
}

/// The PR's acceptance pin, end to end through the daemon's wire stats:
/// a solve that stalls past its deadline (1) reaches the timed_out
/// terminal state, and (2) loses its revision pin to lease expiry — so
/// pinned_revisions/pinned_bytes return to steady state while the solve
/// is still stuck, and lease_expirations records the forced release.
TEST(SocketServer, StalledJobTimesOutAndLeaseReleasesItsPin) {
  using Clock = std::chrono::steady_clock;
  constexpr auto kHang = std::chrono::milliseconds(2000);

  // Set by the factory, which the engine only reaches AFTER resolving
  // the batch's snapshots: once true, the stuck solve provably holds
  // revision 0, so superseding it below must produce a pin.
  const auto solve_started = std::make_shared<std::atomic<bool>>(false);

  SocketServerOptions options;
  options.revision_lease_ms = 600;
  options.lease_grace_ms = 550;  // deadline 50 + grace = 600 ms lease
  options.factory = [solve_started, kHang](
                        const service::SolveJob& job,
                        const service::MapperContext& ctx) -> mapping::MapperPtr {
    if (job.algorithm == "hang") {
      solve_started->store(true);
      return std::make_unique<HungMapper>(ctx.abort, kHang);
    }
    return service::make_engine_elpc(ctx);
  };
  SocketServer server(socket_path("lease"), options);
  std::thread serve_thread([&server]() { server.serve(); });
  DaemonClient client(server.socket_path());

  graph::Network net = make_network(3);
  const graph::Edge edge = net.out_edges(0).front();
  client.register_network("net", std::move(net));

  service::SolveJob job =
      make_job("stall", 97, service::Objective::kMaxFrameRate);
  job.algorithm = "hang";
  job.deadline_ms = 50;
  const Ticket ticket = client.submit(job);

  // Wait for the solve to be running (holding revision 0's snapshot).
  const Clock::time_point give_up = Clock::now() + std::chrono::seconds(10);
  while (!solve_started->load()) {
    ASSERT_LT(Clock::now(), give_up) << "job never started running";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Supersede revision 0: the stuck solve's snapshot now pins it.
  const std::vector<graph::LinkUpdate> delta = {
      graph::LinkUpdate{edge.from, edge.to, edge.attr}};
  EXPECT_TRUE(client.apply_link_updates("net", delta).empty());
  util::Json stats = client.stats();
  EXPECT_EQ(stats.at("pinned_revisions").as_int(), 1);
  EXPECT_GT(stats.at("pinned_bytes").as_int(), 0);

  // The lease sweep must release the pin while the solve is still stuck
  // (the mapper sleeps 2 s; the lease lapses at ~0.6 s).
  for (;;) {
    stats = client.stats();
    if (stats.at("pinned_revisions").as_int() == 0) {
      break;
    }
    ASSERT_LT(Clock::now(), give_up) << "lease never released the pin";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(stats.at("pinned_bytes").as_int(), 0);
  EXPECT_GE(stats.at("lease_expirations").as_int(), 1);

  // And the job itself lands in the timed_out terminal state.
  const util::Json waited = client.wait(ticket);
  EXPECT_EQ(waited.at("state").as_string(), "timed_out");
  EXPECT_EQ(client.stats().at("timed_out").as_int(), 1);

  client.shutdown_server();
  serve_thread.join();
}

TEST(SocketServer, DrainVerbStopsAdmissionAndReportsCacheState) {
  SocketServer server(socket_path("drain"), SocketServerOptions{});
  std::thread serve_thread([&server]() { server.serve(); });
  DaemonClient client(server.socket_path());

  client.register_network("net", make_network(3));
  const Ticket ticket = client.submit(
      make_job("before", 98, service::Objective::kMinDelay));
  (void)client.wait(ticket);

  const util::Json report = client.drain(/*timeout_ms=*/10000);
  EXPECT_TRUE(report.at("drained").as_bool());
  EXPECT_EQ(report.at("queued").as_int(), 0);
  EXPECT_EQ(report.at("running").as_int(), 0);
  EXPECT_EQ(report.at("timed_out").as_int(), 0);
  // The drain answer carries the cache's end state so an operator can
  // confirm nothing is left pinned before killing the process.
  EXPECT_EQ(report.at("pinned_revisions").as_int(), 0);
  EXPECT_EQ(report.at("lease_expirations").as_int(), 0);

  // Admission is closed: a submit after drain answers an error frame.
  EXPECT_THROW((void)client.submit(make_job(
                   "after", 99, service::Objective::kMinDelay)),
               DaemonError);
  EXPECT_TRUE(client.stats().at("draining").as_bool());
  // Read verbs keep answering while drained.
  EXPECT_EQ(client.poll(ticket).at("state").as_string(), "done");

  client.shutdown_server();
  serve_thread.join();
}

}  // namespace
}  // namespace elpc::daemon
