#include "daemon/trace_export.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.hpp"
#include "daemon/socket_server.hpp"
#include "daemon/trace.hpp"
#include "graph/generators.hpp"
#include "pipeline/generator.hpp"
#include "service/batch_engine.hpp"
#include "service/serialize.hpp"
#include "util/json.hpp"
#include "util/profiler.hpp"
#include "util/rng.hpp"

namespace elpc::daemon {
namespace {

graph::Network make_network(std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::random_connected_network(rng, 10, 50,
                                         graph::AttributeRanges{});
}

service::SolveJob make_job(const std::string& id, std::uint64_t pseed,
                           service::Objective objective) {
  util::Rng rng(pseed);
  service::SolveJob job;
  job.id = id;
  job.network = "net";
  job.pipeline = pipeline::random_pipeline(rng, 4, {});
  job.source = 0;
  job.destination = 9;
  job.objective = objective;
  job.cost = service::default_cost(objective);
  return job;
}

std::string socket_path(const std::string& tag) {
  return ::testing::TempDir() + "/elpc_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

util::Json make_event(const char* ph, const char* name, double ts,
                      std::int64_t tid) {
  util::Json event{util::JsonObject{}};
  event.set("ph", std::string(ph));
  event.set("name", std::string(name));
  event.set("ts", ts);
  event.set("pid", 1);
  event.set("tid", tid);
  if (std::string(ph) == "X") {
    event.set("dur", 1.0);
  }
  return event;
}

util::Json make_doc(util::JsonArray events) {
  util::Json doc{util::JsonObject{}};
  doc.set("traceEvents", util::Json(std::move(events)));
  return doc;
}

util::ProfileEvent make_profile_event(unsigned tid, std::uint64_t seq,
                                      std::uint64_t ts_ns, bool begin,
                                      const char* name) {
  util::ProfileEvent event;
  event.tid = tid;
  event.seq = seq;
  event.ts_ns = ts_ns;
  event.begin = begin;
  event.name = name;
  event.category = "test";
  return event;
}

// ---------------------------------------------------------------------------
// Validator unit behaviour.

TEST(TraceExport, ValidatorAcceptsAWellFormedDocument) {
  util::JsonArray events;
  events.push_back(make_event("B", "solve", 10.0, 1));
  events.push_back(make_event("B", "arena", 11.0, 1));
  events.push_back(make_event("E", "arena", 12.0, 1));
  events.push_back(make_event("X", "span", 12.0, 1000001));
  events.push_back(make_event("E", "solve", 13.0, 1));
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(make_doc(std::move(events)), &error))
      << error;
}

TEST(TraceExport, ValidatorRejectsNonObjectAndMissingArray) {
  EXPECT_FALSE(validate_chrome_trace(util::Json(1.0)));
  std::string error;
  EXPECT_FALSE(
      validate_chrome_trace(util::Json(util::JsonObject{}), &error));
  EXPECT_NE(error.find("traceEvents"), std::string::npos);
}

TEST(TraceExport, ValidatorRejectsBackwardsTimestampsPerTid) {
  util::JsonArray events;
  events.push_back(make_event("B", "solve", 20.0, 1));
  events.push_back(make_event("E", "solve", 10.0, 1));  // goes back in time
  std::string error;
  EXPECT_FALSE(validate_chrome_trace(make_doc(std::move(events)), &error));
  EXPECT_NE(error.find("backwards"), std::string::npos);

  // Distinct tids keep independent clocks: an earlier ts on ANOTHER row
  // is fine.
  util::JsonArray two_rows;
  two_rows.push_back(make_event("B", "solve", 20.0, 1));
  two_rows.push_back(make_event("B", "solve", 5.0, 2));
  two_rows.push_back(make_event("E", "solve", 6.0, 2));
  two_rows.push_back(make_event("E", "solve", 21.0, 1));
  EXPECT_TRUE(validate_chrome_trace(make_doc(std::move(two_rows)), &error))
      << error;
}

TEST(TraceExport, ValidatorRejectsUnbalancedOrMismatchedPairs) {
  util::JsonArray orphan_end;
  orphan_end.push_back(make_event("E", "solve", 10.0, 1));
  std::string error;
  EXPECT_FALSE(validate_chrome_trace(make_doc(std::move(orphan_end)), &error));
  EXPECT_NE(error.find("without open B"), std::string::npos);

  util::JsonArray mismatch;
  mismatch.push_back(make_event("B", "solve", 10.0, 1));
  mismatch.push_back(make_event("E", "arena", 11.0, 1));
  EXPECT_FALSE(validate_chrome_trace(make_doc(std::move(mismatch)), &error));
  EXPECT_NE(error.find("closes"), std::string::npos);

  util::JsonArray unclosed;
  unclosed.push_back(make_event("B", "solve", 10.0, 1));
  EXPECT_FALSE(validate_chrome_trace(make_doc(std::move(unclosed)), &error));
  EXPECT_NE(error.find("unclosed"), std::string::npos);
}

TEST(TraceExport, ValidatorRejectsBadCompleteSlicesAndUnknownPhases) {
  util::JsonArray no_dur;
  no_dur.push_back(make_event("B", "solve", 10.0, 1));
  no_dur.push_back(make_event("E", "solve", 11.0, 1));
  util::Json bad_x = make_event("X", "span", 12.0, 2);
  bad_x.set("dur", -1.0);
  no_dur.push_back(std::move(bad_x));
  std::string error;
  EXPECT_FALSE(validate_chrome_trace(make_doc(std::move(no_dur)), &error));
  EXPECT_NE(error.find("non-negative dur"), std::string::npos);

  util::JsonArray unknown;
  unknown.push_back(make_event("M", "meta", 0.0, 1));
  EXPECT_FALSE(validate_chrome_trace(make_doc(std::move(unknown)), &error));
  EXPECT_NE(error.find("unsupported ph"), std::string::npos);
}

TEST(TraceExport, ValidatorRejectsMissingOrMistypedFields) {
  util::Json event{util::JsonObject{}};
  event.set("ph", std::string("B"));
  event.set("name", std::string("solve"));
  event.set("ts", std::string("not-a-number"));
  event.set("pid", 1);
  event.set("tid", 1);
  util::JsonArray events;
  events.push_back(std::move(event));
  std::string error;
  EXPECT_FALSE(validate_chrome_trace(make_doc(std::move(events)), &error));
  EXPECT_NE(error.find("missing ts"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Exporter behaviour on hand-built snapshots.

TEST(TraceExport, ExportsOnlyMatchedPairsAndAccountsTheRest) {
  util::ProfilerSnapshot snapshot;
  // tid 1: a matched pair plus an end whose begin was evicted.
  snapshot.events.push_back(make_profile_event(1, 1, 1000, false, "evicted"));
  snapshot.events.push_back(make_profile_event(1, 2, 2000, true, "solve"));
  snapshot.events.push_back(make_profile_event(1, 3, 3000, false, "solve"));
  // tid 2: a begin still open at drain time.
  snapshot.events.push_back(make_profile_event(2, 1, 1500, true, "open"));
  snapshot.recorded = 6;
  snapshot.dropped = 2;
  snapshot.drained = 4;
  snapshot.threads = 2;

  const util::Json doc = chrome_trace_json(snapshot, {});
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(doc, &error)) << error;
  const util::JsonArray& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);  // just the matched solve pair
  EXPECT_EQ(events[0].at("ph").as_string(), "B");
  EXPECT_EQ(events[0].at("name").as_string(), "solve");
  EXPECT_EQ(events[1].at("ph").as_string(), "E");

  const util::Json& accounting = doc.at("elpc");
  EXPECT_EQ(accounting.at("recorded").as_int(), 6);
  EXPECT_EQ(accounting.at("dropped").as_int(), 2);
  EXPECT_EQ(accounting.at("drained").as_int(), 4);
  EXPECT_EQ(accounting.at("exported_events").as_int(), 2);
  EXPECT_EQ(accounting.at("unmatched_events").as_int(), 2);
  EXPECT_EQ(accounting.at("spans").as_int(), 0);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
}

TEST(TraceExport, EqualTimestampsKeepRecordingOrderSoNestingSurvives) {
  // Two nested scopes whose four boundaries share one timestamp: a sort
  // that broke recording order would emit E "outer" before E "inner" and
  // fail validation.
  util::ProfilerSnapshot snapshot;
  snapshot.events.push_back(make_profile_event(1, 1, 5000, true, "outer"));
  snapshot.events.push_back(make_profile_event(1, 2, 5000, true, "inner"));
  snapshot.events.push_back(make_profile_event(1, 3, 5000, false, "inner"));
  snapshot.events.push_back(make_profile_event(1, 4, 5000, false, "outer"));
  snapshot.recorded = snapshot.drained = 4;
  snapshot.threads = 1;
  const util::Json doc = chrome_trace_json(snapshot, {});
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(doc, &error)) << error;
  EXPECT_EQ(doc.at("traceEvents").as_array().size(), 4u);
}

TEST(TraceExport, SpansBecomeCompleteSlicesOnPerTicketRows) {
  TraceSpan span;
  span.ticket = 42;
  span.job_id = "job7";
  span.trace_id = "req-1";
  span.state = "done";
  span.kernel = "scalar";
  span.e2e_ms = 2.0;
  span.end_mono_ns = 5'000'000;  // ends at 5000 us, so starts at 3000 us
  const std::vector<TraceSpan> spans{span};

  const util::Json doc = chrome_trace_json(util::ProfilerSnapshot{}, spans);
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(doc, &error)) << error;
  const util::JsonArray& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);
  const util::Json& slice = events[0];
  EXPECT_EQ(slice.at("ph").as_string(), "X");
  EXPECT_EQ(slice.at("name").as_string(), "job7");
  EXPECT_EQ(slice.at("tid").as_int(), 1000042);
  EXPECT_DOUBLE_EQ(slice.at("dur").as_number(), 2000.0);
  EXPECT_DOUBLE_EQ(slice.at("ts").as_number(), 3000.0);
  EXPECT_EQ(slice.at("args").at("trace_id").as_string(), "req-1");
  EXPECT_EQ(slice.at("args").at("ticket").as_int(), 42);
  EXPECT_EQ(doc.at("elpc").at("spans").as_int(), 1);

  // A span whose duration exceeds its end anchor clamps to ts 0 rather
  // than going negative.
  TraceSpan early = span;
  early.end_mono_ns = 1'000'000;  // 1000 us end, 2000 us duration
  const std::vector<TraceSpan> clamped{early};
  const util::Json doc2 = chrome_trace_json(util::ProfilerSnapshot{}, clamped);
  EXPECT_DOUBLE_EQ(
      doc2.at("traceEvents").as_array()[0].at("ts").as_number(), 0.0);
}

// ---------------------------------------------------------------------------
// End to end: a live daemon with --profile on serves a trace document
// that validates, conserves spans, propagates trace ids, and answers
// byte-identically to an unprofiled direct solve.

class TraceDaemonTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::Profiler::set_enabled(false);
    util::Profiler::reset();
  }
};

TEST_F(TraceDaemonTest, TraceVerbServesAValidConservedTimeline) {
  SocketServerOptions options;
  options.threads = 2;
  options.start_paused = true;  // measurable queue wait => slowlog entries
  options.slow_ms = 1;
  options.profile = true;
  SocketServer server(socket_path("trace"), options);
  std::thread serve_thread([&server]() { server.serve(); });

  DaemonClient client(server.socket_path());
  client.register_network("net", make_network(3));

  std::vector<service::SolveJob> jobs;
  jobs.push_back(make_job("delay0", 80, service::Objective::kMinDelay));
  jobs.push_back(make_job("fps0", 81, service::Objective::kMaxFrameRate));
  jobs[0].trace_id = "req-delay0";  // explicit job-level id wins
  const Ticket t0 = client.submit(jobs[0]);
  const Ticket t1 = client.submit(jobs[1]);
  const Ticket doomed =
      client.submit(make_job("doomed", 82, service::Objective::kMinDelay));
  EXPECT_TRUE(client.cancel(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  client.resume();

  // Terminal statuses echo the job's trace id: the explicit one for t0,
  // the client's auto-generated "c<pid>-<n>" for t1.
  const util::Json done0 = client.wait(t0);
  EXPECT_EQ(done0.at("state").as_string(), "done");
  EXPECT_EQ(done0.at("trace_id").as_string(), "req-delay0");
  const util::Json done1 = client.wait(t1);
  EXPECT_EQ(done1.at("state").as_string(), "done");
  EXPECT_EQ(done1.at("trace_id").as_string().substr(0, 1), "c");

  // --- the trace verb: a validating Chrome-trace doc with sane
  // accounting and one span per terminal ticket.
  const util::Json trace = client.trace();
  EXPECT_TRUE(trace.at("profiling").as_bool());
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(trace.at("trace"), &error)) << error;
  EXPECT_GT(trace.at("recorded").as_int(), 0);
  EXPECT_GT(trace.at("events").as_int(), 0);
  // The response's own serialization records events after the drain, so
  // the accounting is conservative, never over-counting.
  EXPECT_LE(trace.at("drained").as_int() + trace.at("dropped").as_int(),
            trace.at("recorded").as_int());
  EXPECT_EQ(trace.at("spans_total").as_int(), 3);  // done, done, cancelled
  EXPECT_EQ(trace.at("spans").as_int(), 3);

  // The solve phases carry the jobs' trace ids into the timeline.
  bool saw_traced_solve = false;
  for (const util::Json& event : trace.at("trace").at("traceEvents").as_array()) {
    if (event.at("ph").as_string() != "B" ||
        event.at("name").as_string() != "solve") {
      continue;
    }
    const util::Json* args = event.find("args");
    if (args != nullptr && args->contains("trace_id") &&
        args->at("trace_id").as_string() == "req-delay0") {
      saw_traced_solve = true;
    }
  }
  EXPECT_TRUE(saw_traced_solve);

  // --- a second drain starts empty (events are consumed exactly once)
  // but spans are retained, not consumed.
  const util::Json again = client.trace();
  EXPECT_GE(again.at("drained").as_int(), trace.at("drained").as_int());
  EXPECT_EQ(again.at("spans").as_int(), 3);
  EXPECT_EQ(again.at("spans_total").as_int(), 3);

  // --- server-side slowlog filters; entries carry trace ids.
  const util::Json all = client.slowlog();
  EXPECT_GE(all.at("entries").as_array().size(), 2u);
  bool span_has_trace = false;
  for (const util::Json& entry : all.at("entries").as_array()) {
    if (entry.contains("trace_id") &&
        entry.at("trace_id").as_string() == "req-delay0") {
      span_has_trace = true;
    }
  }
  EXPECT_TRUE(span_has_trace);
  DaemonClient::SlowlogFilter done_only;
  done_only.state = "done";
  const util::Json filtered = client.slowlog(done_only);
  for (const util::Json& entry : filtered.at("entries").as_array()) {
    EXPECT_EQ(entry.at("state").as_string(), "done");
  }
  DaemonClient::SlowlogFilter nothing;
  nothing.min_ms = 1e9;
  const util::Json empty = client.slowlog(nothing);
  EXPECT_TRUE(empty.at("entries").as_array().empty());
  // `total` stays the unfiltered cumulative count.
  EXPECT_EQ(empty.at("total").as_int(), all.at("total").as_int());

  // --- profiling must not perturb answers: canonical result JSON is
  // byte-identical to a direct solve with the profiler off.
  util::Profiler::set_enabled(false);
  service::BatchEngine direct;
  direct.register_network("net", make_network(3));
  const std::vector<service::SolveResult> expected = direct.solve(jobs);
  EXPECT_EQ(done0.at("result").dump(),
            service::result_entry_to_json(expected[0]).dump());
  EXPECT_EQ(done1.at("result").dump(),
            service::result_entry_to_json(expected[1]).dump());
  // The canonical result block never carries the trace id (CI diffs
  // daemon results against batch results byte-for-byte).
  EXPECT_FALSE(done0.at("result").contains("trace_id"));

  client.shutdown_server();
  serve_thread.join();
}

}  // namespace
}  // namespace elpc::daemon
