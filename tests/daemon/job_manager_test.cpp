#include "daemon/job_manager.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "pipeline/generator.hpp"
#include "service/batch_engine.hpp"
#include "util/rng.hpp"

namespace elpc::daemon {
namespace {

graph::Network make_network(std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::random_connected_network(rng, 10, 50,
                                         graph::AttributeRanges{});
}

service::SolveJob make_job(const std::string& id, std::uint64_t pseed,
                           service::Objective objective) {
  util::Rng rng(pseed);
  service::SolveJob job;
  job.id = id;
  job.network = "net";
  job.pipeline = pipeline::random_pipeline(rng, 4, {});
  job.source = 0;
  job.destination = 9;
  job.objective = objective;
  job.cost = service::default_cost(objective);
  return job;
}

std::vector<service::SolveJob> make_jobs(std::size_t n) {
  std::vector<service::SolveJob> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(make_job("job" + std::to_string(i), 100 + i,
                            i % 2 == 0 ? service::Objective::kMinDelay
                                       : service::Objective::kMaxFrameRate));
  }
  return jobs;
}

TEST(JobManager, AsyncResultsBitIdenticalToDirectSolve) {
  service::BatchEngine engine;
  engine.register_network("net", make_network(3));
  JobManager manager(engine);

  const std::vector<service::SolveJob> jobs = make_jobs(6);
  std::vector<Ticket> tickets;
  for (const service::SolveJob& job : jobs) {
    tickets.push_back(manager.submit(job));
  }

  service::BatchEngine direct;
  direct.register_network("net", make_network(3));
  const std::vector<service::SolveResult> expected = direct.solve(jobs);

  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const JobStatus status = manager.wait(tickets[i]);
    EXPECT_EQ(status.state, JobState::kDone);
    EXPECT_TRUE(status.result.error.empty()) << status.result.error;
    // The manager adds scheduling, never configuration: same kernels,
    // same inputs, bit-identical outputs.
    EXPECT_EQ(status.result.result.seconds, expected[i].result.seconds)
        << jobs[i].id;
    EXPECT_EQ(status.result.result.mapping, expected[i].result.mapping)
        << jobs[i].id;
  }
}

TEST(JobManager, DispatchFollowsPriorityThenSubmissionOrder) {
  // Record the order jobs reach the mapper factory.  max_batch = 1 makes
  // dispatch strictly one job per cycle, so the recorded order is the
  // scheduling order; start_paused lets all submissions queue first.
  std::mutex order_mutex;
  std::vector<std::string> order;
  service::BatchEngineOptions engine_options;
  engine_options.factory = [&order, &order_mutex](
                               const service::SolveJob& job,
                               const service::MapperContext& ctx) {
    {
      const std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(job.id);
    }
    return service::make_engine_elpc(ctx);
  };
  service::BatchEngine engine(engine_options);
  engine.register_network("net", make_network(3));

  JobManagerOptions manager_options;
  manager_options.max_batch = 1;
  manager_options.start_paused = true;
  JobManager manager(engine, manager_options);

  const std::vector<service::SolveJob> jobs = make_jobs(4);
  std::vector<Ticket> tickets;
  tickets.push_back(manager.submit(jobs[0], /*priority=*/0));
  tickets.push_back(manager.submit(jobs[1], /*priority=*/5));
  tickets.push_back(manager.submit(jobs[2], /*priority=*/5));
  tickets.push_back(manager.submit(jobs[3], /*priority=*/1));
  EXPECT_EQ(manager.stats().queued, 4u);

  manager.resume();
  for (const Ticket ticket : tickets) {
    (void)manager.wait(ticket);
  }
  // Highest priority first; FIFO between the two priority-5 jobs.
  const std::vector<std::string> expected = {"job1", "job2", "job3", "job0"};
  EXPECT_EQ(order, expected);
}

TEST(JobManager, CancelQueuedRemovesJobBeforeItEverRuns) {
  std::mutex seen_mutex;
  std::vector<std::string> seen;
  service::BatchEngineOptions engine_options;
  engine_options.factory = [&seen, &seen_mutex](
                               const service::SolveJob& job,
                               const service::MapperContext& ctx) {
    {
      const std::lock_guard<std::mutex> lock(seen_mutex);
      seen.push_back(job.id);
    }
    return service::make_engine_elpc(ctx);
  };
  service::BatchEngine engine(engine_options);
  engine.register_network("net", make_network(3));
  JobManagerOptions manager_options;
  manager_options.start_paused = true;
  JobManager manager(engine, manager_options);

  const std::vector<service::SolveJob> jobs = make_jobs(3);
  const Ticket keep1 = manager.submit(jobs[0]);
  const Ticket victim = manager.submit(jobs[1]);
  const Ticket keep2 = manager.submit(jobs[2]);

  EXPECT_TRUE(manager.cancel(victim));
  const JobStatus cancelled = manager.poll(victim);
  EXPECT_EQ(cancelled.state, JobState::kCancelled);
  EXPECT_EQ(cancelled.result.error, service::kCancelledError);

  manager.resume();
  EXPECT_EQ(manager.wait(keep1).state, JobState::kDone);
  EXPECT_EQ(manager.wait(keep2).state, JobState::kDone);
  EXPECT_EQ(seen.size(), 2u);  // the cancelled job never reached a mapper
  // Cancelling an already-cancelled job is a no-op.
  EXPECT_FALSE(manager.cancel(victim));
}

TEST(JobManager, CancelAfterCompletionIsNoOp) {
  service::BatchEngine engine;
  engine.register_network("net", make_network(3));
  JobManager manager(engine);

  const Ticket ticket =
      manager.submit(make_job("j", 7, service::Objective::kMinDelay));
  const JobStatus done = manager.wait(ticket);
  ASSERT_EQ(done.state, JobState::kDone);

  EXPECT_FALSE(manager.cancel(ticket));
  // The completed result is untouched by the attempted cancellation.
  const JobStatus after = manager.poll(ticket);
  EXPECT_EQ(after.state, JobState::kDone);
  EXPECT_EQ(after.result.result.seconds, done.result.result.seconds);
}

TEST(JobManager, UnknownTicketIsAnErrorNotACrash) {
  service::BatchEngine engine;
  engine.register_network("net", make_network(3));
  JobManager manager(engine);
  EXPECT_THROW((void)manager.poll(999), std::out_of_range);
  EXPECT_THROW((void)manager.cancel(999), std::out_of_range);
  EXPECT_THROW((void)manager.wait(999), std::out_of_range);
}

TEST(JobManager, BatchLevelRejectionFailsTheJobNotTheDaemon) {
  service::BatchEngine engine;
  engine.register_network("net", make_network(3));
  JobManager manager(engine);

  service::SolveJob stray = make_job("stray", 7,
                                     service::Objective::kMinDelay);
  stray.network = "unregistered";
  const Ticket bad = manager.submit(stray);
  const JobStatus failed = manager.wait(bad);
  EXPECT_EQ(failed.state, JobState::kFailed);
  EXPECT_NE(failed.result.error.find("unregistered"), std::string::npos);

  // The manager keeps serving after the failure.
  const Ticket good =
      manager.submit(make_job("ok", 8, service::Objective::kMinDelay));
  EXPECT_EQ(manager.wait(good).state, JobState::kDone);
}

TEST(JobManager, RetentionCapEvictsOldestTerminalRecords) {
  service::BatchEngine engine;
  engine.register_network("net", make_network(3));
  JobManagerOptions manager_options;
  manager_options.max_retained_results = 3;
  JobManager manager(engine, manager_options);

  std::vector<Ticket> tickets;
  for (const service::SolveJob& job : make_jobs(6)) {
    const Ticket ticket = manager.submit(job);
    (void)manager.wait(ticket);  // serialize: completion order == ticket order
    tickets.push_back(ticket);
  }

  // Cumulative counters survive eviction; records are capped.
  EXPECT_EQ(manager.stats().done, 6u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_THROW((void)manager.poll(tickets[i]), std::out_of_range);
  }
  for (std::size_t i = 3; i < 6; ++i) {
    EXPECT_EQ(manager.poll(tickets[i]).state, JobState::kDone);
  }
}

TEST(JobManager, StatsTrackStates) {
  service::BatchEngine engine;
  engine.register_network("net", make_network(3));
  JobManagerOptions manager_options;
  manager_options.start_paused = true;
  JobManager manager(engine, manager_options);

  const std::vector<service::SolveJob> jobs = make_jobs(3);
  std::vector<Ticket> tickets;
  for (const service::SolveJob& job : jobs) {
    tickets.push_back(manager.submit(job));
  }
  EXPECT_TRUE(manager.cancel(tickets[0]));
  JobManagerStats stats = manager.stats();
  EXPECT_TRUE(stats.paused);
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.queued, 2u);
  EXPECT_EQ(stats.cancelled, 1u);

  manager.resume();
  (void)manager.wait(tickets[1]);
  (void)manager.wait(tickets[2]);
  stats = manager.stats();
  EXPECT_EQ(stats.done, 2u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_FALSE(stats.paused);
}

}  // namespace
}  // namespace elpc::daemon
