#include "daemon/socket_server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "daemon/client.hpp"
#include "graph/generators.hpp"
#include "pipeline/generator.hpp"
#include "service/serialize.hpp"
#include "util/rng.hpp"

namespace elpc::daemon {
namespace {

graph::Network make_network(std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::random_connected_network(rng, 10, 50,
                                         graph::AttributeRanges{});
}

service::SolveJob make_job(const std::string& id, std::uint64_t pseed,
                           service::Objective objective) {
  util::Rng rng(pseed);
  service::SolveJob job;
  job.id = id;
  job.network = "net";
  job.pipeline = pipeline::random_pipeline(rng, 4, {});
  job.source = 0;
  job.destination = 9;
  job.objective = objective;
  job.cost = service::default_cost(objective);
  return job;
}

/// First out-edge of node 0 in the deterministic test network `seed` —
/// for building link deltas without re-deriving the topology.
graph::Edge first_edge(std::uint64_t seed) {
  graph::Network net = make_network(seed);
  return net.out_edges(0).front();
}

/// A unique socket path per test (paths must fit sun_path and not
/// collide across parallel test shards).
std::string socket_path(const std::string& tag) {
  return ::testing::TempDir() + "/elpc_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// The acceptance-criteria flow, end to end over a real socket:
/// register → submit with mixed priorities → poll/wait to completion →
/// cancel a queued job → apply_link_updates re-solving a subscription →
/// stats → shutdown; results bit-identical to direct BatchEngine::solve.
TEST(SocketServer, EndToEndFlowMatchesDirectEngine) {
  SocketServerOptions options;
  options.threads = 2;
  options.max_batch = 1;       // strict priority order
  options.start_paused = true;  // queue everything before dispatching
  SocketServer server(socket_path("e2e"), options);
  std::thread serve_thread([&server]() { server.serve(); });

  DaemonClient client(server.socket_path());
  client.register_network("net", make_network(3));

  std::vector<service::SolveJob> jobs;
  jobs.push_back(make_job("delay0", 50, service::Objective::kMinDelay));
  jobs.push_back(make_job("fps0", 51, service::Objective::kMaxFrameRate));
  jobs.push_back(make_job("delay1", 52, service::Objective::kMinDelay));
  jobs[1].resolve_on_update = true;  // the subscription

  const Ticket t0 = client.submit(jobs[0], /*priority=*/1);
  const Ticket t1 = client.submit(jobs[1], /*priority=*/3);
  const Ticket t2 = client.submit(jobs[2], /*priority=*/2);
  // A fourth job is cancelled while still queued: it must never run.
  const Ticket doomed = client.submit(
      make_job("doomed", 53, service::Objective::kMinDelay), /*priority=*/0);
  EXPECT_TRUE(client.cancel(doomed));
  EXPECT_EQ(client.poll(doomed).at("state").as_string(), "cancelled");

  // Everything still queued; poll reports that before dispatch opens.
  EXPECT_EQ(client.poll(t0).at("state").as_string(), "queued");
  client.resume();

  const util::Json done0 = client.wait(t0);
  const util::Json done1 = client.wait(t1);
  const util::Json done2 = client.wait(t2);
  EXPECT_EQ(done0.at("state").as_string(), "done");
  EXPECT_EQ(done1.at("state").as_string(), "done");
  EXPECT_EQ(done2.at("state").as_string(), "done");

  // Reference: the same jobs through a direct, in-process engine.
  service::BatchEngine direct;
  direct.register_network("net", make_network(3));
  const std::vector<service::SolveResult> expected = direct.solve(jobs);
  const std::vector<const util::Json*> answers = {&done0, &done1, &done2};
  for (std::size_t i = 0; i < answers.size(); ++i) {
    // Canonical entry JSON is the bit-identity pin: same seconds, same
    // mapping, same revision, byte-for-byte.
    EXPECT_EQ(answers[i]->at("result").dump(),
              service::result_entry_to_json(expected[i]).dump())
        << jobs[i].id;
  }

  // Deltas re-solve the subscription ("fps0") against revision 1, both
  // via the daemon and directly; answers must again match bitwise.
  std::vector<graph::LinkUpdate> updates;
  {
    const service::NetworkSnapshot snap = direct.session("net").snapshot();
    for (graph::NodeId v = 0; v < snap->node_count(); ++v) {
      for (const graph::Edge& e : snap->out_edges(v)) {
        updates.push_back(graph::LinkUpdate{
            e.from, e.to,
            graph::LinkAttr{e.attr.bandwidth_mbps * 0.5,
                            e.attr.min_delay_s}});
      }
    }
  }
  const std::vector<util::Json> resolved =
      client.apply_link_updates("net", updates);
  const std::vector<service::SolveResult> resolved_direct =
      direct.apply_link_updates("net", updates);
  ASSERT_EQ(resolved.size(), 1u);
  ASSERT_EQ(resolved_direct.size(), 1u);
  EXPECT_EQ(resolved[0].at("job").as_string(), "fps0");
  EXPECT_EQ(resolved[0].at("revision").as_int(), 1);
  EXPECT_EQ(resolved[0].dump(),
            service::result_entry_to_json(resolved_direct[0]).dump());

  const util::Json stats = client.stats();
  EXPECT_EQ(stats.at("done").as_int(), 3);
  EXPECT_EQ(stats.at("cancelled").as_int(), 1);
  EXPECT_EQ(stats.at("queued").as_int(), 0);
  EXPECT_EQ(stats.at("sessions").as_int(), 1);
  EXPECT_EQ(stats.at("subscriptions").as_int(), 1);

  client.shutdown_server();
  serve_thread.join();
}

TEST(SocketServer, BadRequestsAnswerErrorsWithoutKillingTheDaemon) {
  SocketServer server(socket_path("err"), SocketServerOptions{});
  std::thread serve_thread([&server]() { server.serve(); });
  DaemonClient client(server.socket_path());

  // Unknown ticket: an error response, not a crash.
  util::Json poll_unknown = util::JsonObject{};
  poll_unknown.set("verb", "poll");
  poll_unknown.set("ticket", 12345);
  const util::Json response = client.request(poll_unknown);
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_NE(response.at("error").as_string().find("ticket"),
            std::string::npos);

  // Unknown verb and missing fields answer errors too.
  util::Json bad_verb = util::JsonObject{};
  bad_verb.set("verb", "frobnicate");
  EXPECT_FALSE(client.request(bad_verb).at("ok").as_bool());
  util::Json no_verb = util::JsonObject{};
  EXPECT_FALSE(client.request(no_verb).at("ok").as_bool());

  // Unknown session for updates: error, daemon lives.
  util::Json bad_update = util::JsonObject{};
  bad_update.set("verb", "apply_link_updates");
  bad_update.set("network", "nope");
  bad_update.set("updates", util::Json(util::JsonArray{}));
  EXPECT_FALSE(client.request(bad_update).at("ok").as_bool());

  // The daemon still answers real work after all of the above.
  client.register_network("net", make_network(3));
  const Ticket ticket =
      client.submit(make_job("ok", 60, service::Objective::kMinDelay));
  EXPECT_EQ(client.wait(ticket).at("state").as_string(), "done");

  client.shutdown_server();
  serve_thread.join();
}

TEST(SocketServer, BlockedWaitDoesNotStallOtherClients) {
  SocketServerOptions options;
  options.start_paused = true;  // the waited-on job cannot finish yet
  SocketServer server(socket_path("wait"), options);
  std::thread serve_thread([&server]() { server.serve(); });

  DaemonClient submitter(server.socket_path());
  submitter.register_network("net", make_network(3));
  const Ticket ticket = submitter.submit(
      make_job("slow", 70, service::Objective::kMinDelay));

  // Client A blocks in the wait verb on its own connection...
  util::Json waited;
  std::thread waiter([&server, ticket, &waited]() {
    DaemonClient blocked(server.socket_path());
    waited = blocked.wait(ticket);
  });
  // ...while client B's resume must still get through — with a serial
  // front end this would deadlock the daemon permanently.
  DaemonClient other(server.socket_path());
  other.resume();
  waiter.join();
  EXPECT_EQ(waited.at("state").as_string(), "done");

  other.shutdown_server();
  serve_thread.join();
}

TEST(SocketServer, RefusesSocketPathOfALiveDaemon) {
  const std::string path = socket_path("dup");
  SocketServer first(path, SocketServerOptions{});
  // A second daemon on the same path must fail loudly, not silently
  // unlink the live endpoint.
  EXPECT_THROW(SocketServer second(path, SocketServerOptions{}),
               util::SocketError);
  // The first daemon's endpoint survived the attempt.
  std::thread serve_thread([&first]() { first.serve(); });
  DaemonClient client(path);
  EXPECT_TRUE(client.stats().at("ok").as_bool());
  client.shutdown_server();
  serve_thread.join();
}

TEST(SocketServer, SessionBudgetBoundsRevisionsAndReportsEvictions) {
  SocketServerOptions options;
  // Budget sized for a handful of 10-node revisions: the delta stream
  // below must evict, not accumulate.
  options.session_history_bytes = 4 * make_network(3).approx_bytes();
  SocketServer server(socket_path("evict"), options);
  std::thread serve_thread([&server]() { server.serve(); });
  DaemonClient client(server.socket_path());

  client.register_network("net", make_network(3));
  // An active subscription pins the revision it last solved against.
  service::SolveJob sub = make_job("sub", 61,
                                   service::Objective::kMaxFrameRate);
  sub.resolve_on_update = true;
  (void)client.wait(client.submit(sub));

  const graph::Edge e = first_edge(3);
  std::vector<graph::LinkUpdate> delta = {
      graph::LinkUpdate{e.from, e.to, e.attr}};
  for (int i = 1; i <= 50; ++i) {
    delta[0].attr.bandwidth_mbps = static_cast<double>(i);
    const std::vector<util::Json> resolved =
        client.apply_link_updates("net", delta);
    ASSERT_EQ(resolved.size(), 1u);  // the subscription re-solved each time
  }

  const util::Json stats = client.stats();
  // Bounded: 50 deltas published 50 revisions, the cache holds only a
  // budget's worth, and the evictions are visible in stats.
  EXPECT_LE(stats.at("cached_revisions").as_int(), 8);
  EXPECT_GE(stats.at("cache_evictions").as_int(), 40);
  EXPECT_EQ(stats.at("subscriptions").as_int(), 1);
  // Non-incremental daemon: the counters exist and stay zero.
  EXPECT_EQ(stats.at("incremental_hits").as_int(), 0);
  EXPECT_EQ(stats.at("checkpoints").as_int(), 0);

  client.shutdown_server();
  serve_thread.join();
}

TEST(SocketServer, IncrementalDaemonReportsReuseAndPinDiagnostics) {
  SocketServerOptions options;
  options.incremental = true;
  SocketServer server(socket_path("incremental"), options);
  std::thread serve_thread([&server]() { server.serve(); });
  DaemonClient client(server.socket_path());

  client.register_network("net", make_network(5));
  service::SolveJob sub =
      make_job("sub", 71, service::Objective::kMaxFrameRate);
  sub.resolve_on_update = true;
  (void)client.wait(client.submit(sub));

  const graph::Edge e = first_edge(5);
  std::vector<graph::LinkUpdate> delta = {
      graph::LinkUpdate{e.from, e.to, e.attr}};
  for (int i = 1; i <= 3; ++i) {
    delta[0].attr.bandwidth_mbps = 100.0 + i;
    ASSERT_EQ(client.apply_link_updates("net", delta).size(), 1u);
  }

  const util::Json stats = client.stats();
  // Capture on the first solve (one miss), column reuse on every delta.
  EXPECT_EQ(stats.at("incremental_misses").as_int(), 1);
  EXPECT_EQ(stats.at("incremental_hits").as_int(), 3);
  EXPECT_GT(stats.at("incremental_columns_reused").as_int(), 0);
  EXPECT_EQ(stats.at("checkpoints").as_int(), 1);
  EXPECT_GT(stats.at("checkpoint_bytes").as_int(), 0);
  // Steady state: the only pin is the subscription's CURRENT revision,
  // which is not superseded — so no pinned superseded revisions.
  EXPECT_EQ(stats.at("pinned_revisions").as_int(), 0);
  EXPECT_EQ(stats.at("pinned_bytes").as_int(), 0);

  client.shutdown_server();
  serve_thread.join();
}

/// Version negotiation end to end: kAuto negotiates the server's best
/// (v2), kV1 never sends hello, and a v1-pinned and a v2 client — live
/// CONCURRENTLY — observe byte-identical results for the same job while
/// the per-version stats gauges count one connection each.
TEST(SocketServer, HelloNegotiatesAndMixedVersionsAnswerIdentically) {
  SocketServer server(socket_path("hello"), SocketServerOptions{});
  std::thread serve_thread([&server]() { server.serve(); });

  DaemonClientOptions v1_options;
  v1_options.protocol = ProtocolPreference::kV1;
  DaemonClient v1_client(server.socket_path(), v1_options);
  DaemonClientOptions v2_options;
  v2_options.protocol = ProtocolPreference::kV2;
  DaemonClient v2_client(server.socket_path(), v2_options);
  DaemonClient auto_client(server.socket_path());  // kAuto default

  EXPECT_EQ(v1_client.protocol_version(), 1);
  EXPECT_EQ(v2_client.protocol_version(), 2);
  EXPECT_EQ(auto_client.protocol_version(), 2);
  EXPECT_EQ(v2_client.hello_info().server_min, wire::kProtocolVersionMin);
  EXPECT_EQ(v2_client.hello_info().server_max, wire::kProtocolVersionMax);

  const StatsView live = v1_client.stats_view();
  EXPECT_GE(live.connections_v1, 1);
  EXPECT_GE(live.connections_v2, 2);
  EXPECT_EQ(live.connections_v1 + live.connections_v2, live.connections);

  // Same job through both protocols: the v2 result crosses as a binary
  // table and must reinflate to the exact v1 bytes.
  v1_client.register_network("net", make_network(3));
  const Ticket v1_ticket = v1_client.submit(
      make_job("mixed", 85, service::Objective::kMaxFrameRate));
  const Ticket v2_ticket = v2_client.submit(
      make_job("mixed", 85, service::Objective::kMaxFrameRate));
  const util::Json v1_done = v1_client.wait(v1_ticket);
  const util::Json v2_done = v2_client.wait(v2_ticket);
  ASSERT_EQ(v1_done.at("state").as_string(), "done");
  ASSERT_EQ(v2_done.at("state").as_string(), "done");
  EXPECT_EQ(v1_done.at("result").dump(), v2_done.at("result").dump());

  // Typed status views decode the same bytes on either protocol.
  const JobStatusView v1_view = v1_client.poll_status(v1_ticket);
  const JobStatusView v2_view = v2_client.poll_status(v2_ticket);
  ASSERT_TRUE(v1_view.terminal());
  ASSERT_TRUE(v2_view.terminal());
  EXPECT_EQ(service::result_entry_to_json(*v1_view.result).dump(),
            service::result_entry_to_json(*v2_view.result).dump());

  // The typed bulk path answers the same entries as the raw JSON verb.
  const graph::Edge edge = first_edge(3);
  std::vector<graph::LinkUpdate> updates = {{edge.from, edge.to, edge.attr}};
  const std::vector<util::Json> raw_entries =
      v1_client.apply_link_updates("net", updates);
  const std::vector<service::SolveResult> typed_entries =
      v2_client.resolve_link_updates("net", updates);
  ASSERT_EQ(raw_entries.size(), typed_entries.size());
  for (std::size_t i = 0; i < raw_entries.size(); ++i) {
    EXPECT_EQ(raw_entries[i].dump(),
              service::result_entry_to_json(typed_entries[i]).dump());
  }

  v1_client.shutdown_server();
  serve_thread.join();
}

/// Hello edge cases through the direct handle() path: defaults (1..1),
/// a disjoint range (code version_mismatch), and min > max (code
/// protocol) — plus the stats frame advertising the server's range.
TEST(SocketServer, HelloEdgeCasesAnswerStableCodes) {
  SocketServer server(socket_path("helloedge"), SocketServerOptions{});

  util::Json plain = util::JsonObject{};
  plain.set("verb", "hello");
  const util::Json defaulted = server.handle(plain);
  EXPECT_TRUE(defaulted.at("ok").as_bool());
  EXPECT_EQ(defaulted.at("version").as_int(), 1);

  util::Json disjoint = util::JsonObject{};
  disjoint.set("verb", "hello");
  disjoint.set("min_version", 3);
  disjoint.set("max_version", 9);
  const util::Json mismatch = server.handle(disjoint);
  EXPECT_FALSE(mismatch.at("ok").as_bool());
  EXPECT_EQ(mismatch.at("code").as_string(), "version_mismatch");
  EXPECT_EQ(mismatch.at("min_version").as_int(), wire::kProtocolVersionMin);
  EXPECT_EQ(mismatch.at("max_version").as_int(), wire::kProtocolVersionMax);

  util::Json inverted = util::JsonObject{};
  inverted.set("verb", "hello");
  inverted.set("min_version", 2);
  inverted.set("max_version", 1);
  const util::Json malformed = server.handle(inverted);
  EXPECT_FALSE(malformed.at("ok").as_bool());
  EXPECT_EQ(malformed.at("code").as_string(), "protocol");

  util::Json stats_frame = util::JsonObject{};
  stats_frame.set("verb", "stats");
  const util::Json stats = server.handle(stats_frame);
  EXPECT_EQ(stats.at("protocol_min").as_int(), wire::kProtocolVersionMin);
  EXPECT_EQ(stats.at("protocol_max").as_int(), wire::kProtocolVersionMax);
}

/// A client demanding v2 from a server that cannot speak it must fail
/// the connect loudly (DaemonError) instead of silently downgrading —
/// simulated with a hand-rolled listener answering hello like a v1-only
/// build would (unknown verb).
TEST(SocketServer, DemandingV2FromAV1OnlyServerFailsLoudly) {
  const std::string path = socket_path("v1only");
  util::UnixListener listener(path);
  std::thread old_server([&listener]() {
    std::optional<util::UnixSocket> peer = listener.accept();
    ASSERT_TRUE(peer.has_value());
    const std::optional<std::string> line = peer->recv_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(util::Json::parse(*line).at("verb").as_string(), "hello");
    peer->send_line(R"({"ok": false, "error": "unknown verb 'hello'"})");
    // Hold the connection until the client gives up.
    (void)peer->recv_line();
  });

  DaemonClientOptions options;
  options.protocol = ProtocolPreference::kV2;
  options.max_retries = 0;
  EXPECT_THROW(DaemonClient(path, options), DaemonError);

  listener.close();
  old_server.join();
}

}  // namespace
}  // namespace elpc::daemon
