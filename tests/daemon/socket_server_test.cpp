#include "daemon/socket_server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "daemon/client.hpp"
#include "graph/generators.hpp"
#include "pipeline/generator.hpp"
#include "service/serialize.hpp"
#include "util/rng.hpp"

namespace elpc::daemon {
namespace {

graph::Network make_network(std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::random_connected_network(rng, 10, 50,
                                         graph::AttributeRanges{});
}

service::SolveJob make_job(const std::string& id, std::uint64_t pseed,
                           service::Objective objective) {
  util::Rng rng(pseed);
  service::SolveJob job;
  job.id = id;
  job.network = "net";
  job.pipeline = pipeline::random_pipeline(rng, 4, {});
  job.source = 0;
  job.destination = 9;
  job.objective = objective;
  job.cost = service::default_cost(objective);
  return job;
}

/// First out-edge of node 0 in the deterministic test network `seed` —
/// for building link deltas without re-deriving the topology.
graph::Edge first_edge(std::uint64_t seed) {
  graph::Network net = make_network(seed);
  return net.out_edges(0).front();
}

/// A unique socket path per test (paths must fit sun_path and not
/// collide across parallel test shards).
std::string socket_path(const std::string& tag) {
  return ::testing::TempDir() + "/elpc_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// The acceptance-criteria flow, end to end over a real socket:
/// register → submit with mixed priorities → poll/wait to completion →
/// cancel a queued job → apply_link_updates re-solving a subscription →
/// stats → shutdown; results bit-identical to direct BatchEngine::solve.
TEST(SocketServer, EndToEndFlowMatchesDirectEngine) {
  SocketServerOptions options;
  options.threads = 2;
  options.max_batch = 1;       // strict priority order
  options.start_paused = true;  // queue everything before dispatching
  SocketServer server(socket_path("e2e"), options);
  std::thread serve_thread([&server]() { server.serve(); });

  DaemonClient client(server.socket_path());
  client.register_network("net", make_network(3));

  std::vector<service::SolveJob> jobs;
  jobs.push_back(make_job("delay0", 50, service::Objective::kMinDelay));
  jobs.push_back(make_job("fps0", 51, service::Objective::kMaxFrameRate));
  jobs.push_back(make_job("delay1", 52, service::Objective::kMinDelay));
  jobs[1].resolve_on_update = true;  // the subscription

  const Ticket t0 = client.submit(jobs[0], /*priority=*/1);
  const Ticket t1 = client.submit(jobs[1], /*priority=*/3);
  const Ticket t2 = client.submit(jobs[2], /*priority=*/2);
  // A fourth job is cancelled while still queued: it must never run.
  const Ticket doomed = client.submit(
      make_job("doomed", 53, service::Objective::kMinDelay), /*priority=*/0);
  EXPECT_TRUE(client.cancel(doomed));
  EXPECT_EQ(client.poll(doomed).at("state").as_string(), "cancelled");

  // Everything still queued; poll reports that before dispatch opens.
  EXPECT_EQ(client.poll(t0).at("state").as_string(), "queued");
  client.resume();

  const util::Json done0 = client.wait(t0);
  const util::Json done1 = client.wait(t1);
  const util::Json done2 = client.wait(t2);
  EXPECT_EQ(done0.at("state").as_string(), "done");
  EXPECT_EQ(done1.at("state").as_string(), "done");
  EXPECT_EQ(done2.at("state").as_string(), "done");

  // Reference: the same jobs through a direct, in-process engine.
  service::BatchEngine direct;
  direct.register_network("net", make_network(3));
  const std::vector<service::SolveResult> expected = direct.solve(jobs);
  const std::vector<const util::Json*> answers = {&done0, &done1, &done2};
  for (std::size_t i = 0; i < answers.size(); ++i) {
    // Canonical entry JSON is the bit-identity pin: same seconds, same
    // mapping, same revision, byte-for-byte.
    EXPECT_EQ(answers[i]->at("result").dump(),
              service::result_entry_to_json(expected[i]).dump())
        << jobs[i].id;
  }

  // Deltas re-solve the subscription ("fps0") against revision 1, both
  // via the daemon and directly; answers must again match bitwise.
  std::vector<graph::LinkUpdate> updates;
  {
    const service::NetworkSnapshot snap = direct.session("net").snapshot();
    for (graph::NodeId v = 0; v < snap->node_count(); ++v) {
      for (const graph::Edge& e : snap->out_edges(v)) {
        updates.push_back(graph::LinkUpdate{
            e.from, e.to,
            graph::LinkAttr{e.attr.bandwidth_mbps * 0.5,
                            e.attr.min_delay_s}});
      }
    }
  }
  const std::vector<util::Json> resolved =
      client.apply_link_updates("net", updates);
  const std::vector<service::SolveResult> resolved_direct =
      direct.apply_link_updates("net", updates);
  ASSERT_EQ(resolved.size(), 1u);
  ASSERT_EQ(resolved_direct.size(), 1u);
  EXPECT_EQ(resolved[0].at("job").as_string(), "fps0");
  EXPECT_EQ(resolved[0].at("revision").as_int(), 1);
  EXPECT_EQ(resolved[0].dump(),
            service::result_entry_to_json(resolved_direct[0]).dump());

  const util::Json stats = client.stats();
  EXPECT_EQ(stats.at("done").as_int(), 3);
  EXPECT_EQ(stats.at("cancelled").as_int(), 1);
  EXPECT_EQ(stats.at("queued").as_int(), 0);
  EXPECT_EQ(stats.at("sessions").as_int(), 1);
  EXPECT_EQ(stats.at("subscriptions").as_int(), 1);

  client.shutdown_server();
  serve_thread.join();
}

TEST(SocketServer, BadRequestsAnswerErrorsWithoutKillingTheDaemon) {
  SocketServer server(socket_path("err"), SocketServerOptions{});
  std::thread serve_thread([&server]() { server.serve(); });
  DaemonClient client(server.socket_path());

  // Unknown ticket: an error response, not a crash.
  util::Json poll_unknown = util::JsonObject{};
  poll_unknown.set("verb", "poll");
  poll_unknown.set("ticket", 12345);
  const util::Json response = client.request(poll_unknown);
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_NE(response.at("error").as_string().find("ticket"),
            std::string::npos);

  // Unknown verb and missing fields answer errors too.
  util::Json bad_verb = util::JsonObject{};
  bad_verb.set("verb", "frobnicate");
  EXPECT_FALSE(client.request(bad_verb).at("ok").as_bool());
  util::Json no_verb = util::JsonObject{};
  EXPECT_FALSE(client.request(no_verb).at("ok").as_bool());

  // Unknown session for updates: error, daemon lives.
  util::Json bad_update = util::JsonObject{};
  bad_update.set("verb", "apply_link_updates");
  bad_update.set("network", "nope");
  bad_update.set("updates", util::Json(util::JsonArray{}));
  EXPECT_FALSE(client.request(bad_update).at("ok").as_bool());

  // The daemon still answers real work after all of the above.
  client.register_network("net", make_network(3));
  const Ticket ticket =
      client.submit(make_job("ok", 60, service::Objective::kMinDelay));
  EXPECT_EQ(client.wait(ticket).at("state").as_string(), "done");

  client.shutdown_server();
  serve_thread.join();
}

TEST(SocketServer, BlockedWaitDoesNotStallOtherClients) {
  SocketServerOptions options;
  options.start_paused = true;  // the waited-on job cannot finish yet
  SocketServer server(socket_path("wait"), options);
  std::thread serve_thread([&server]() { server.serve(); });

  DaemonClient submitter(server.socket_path());
  submitter.register_network("net", make_network(3));
  const Ticket ticket = submitter.submit(
      make_job("slow", 70, service::Objective::kMinDelay));

  // Client A blocks in the wait verb on its own connection...
  util::Json waited;
  std::thread waiter([&server, ticket, &waited]() {
    DaemonClient blocked(server.socket_path());
    waited = blocked.wait(ticket);
  });
  // ...while client B's resume must still get through — with a serial
  // front end this would deadlock the daemon permanently.
  DaemonClient other(server.socket_path());
  other.resume();
  waiter.join();
  EXPECT_EQ(waited.at("state").as_string(), "done");

  other.shutdown_server();
  serve_thread.join();
}

TEST(SocketServer, RefusesSocketPathOfALiveDaemon) {
  const std::string path = socket_path("dup");
  SocketServer first(path, SocketServerOptions{});
  // A second daemon on the same path must fail loudly, not silently
  // unlink the live endpoint.
  EXPECT_THROW(SocketServer second(path, SocketServerOptions{}),
               util::SocketError);
  // The first daemon's endpoint survived the attempt.
  std::thread serve_thread([&first]() { first.serve(); });
  DaemonClient client(path);
  EXPECT_TRUE(client.stats().at("ok").as_bool());
  client.shutdown_server();
  serve_thread.join();
}

TEST(SocketServer, SessionBudgetBoundsRevisionsAndReportsEvictions) {
  SocketServerOptions options;
  // Budget sized for a handful of 10-node revisions: the delta stream
  // below must evict, not accumulate.
  options.session_history_bytes = 4 * make_network(3).approx_bytes();
  SocketServer server(socket_path("evict"), options);
  std::thread serve_thread([&server]() { server.serve(); });
  DaemonClient client(server.socket_path());

  client.register_network("net", make_network(3));
  // An active subscription pins the revision it last solved against.
  service::SolveJob sub = make_job("sub", 61,
                                   service::Objective::kMaxFrameRate);
  sub.resolve_on_update = true;
  (void)client.wait(client.submit(sub));

  const graph::Edge e = first_edge(3);
  std::vector<graph::LinkUpdate> delta = {
      graph::LinkUpdate{e.from, e.to, e.attr}};
  for (int i = 1; i <= 50; ++i) {
    delta[0].attr.bandwidth_mbps = static_cast<double>(i);
    const std::vector<util::Json> resolved =
        client.apply_link_updates("net", delta);
    ASSERT_EQ(resolved.size(), 1u);  // the subscription re-solved each time
  }

  const util::Json stats = client.stats();
  // Bounded: 50 deltas published 50 revisions, the cache holds only a
  // budget's worth, and the evictions are visible in stats.
  EXPECT_LE(stats.at("cached_revisions").as_int(), 8);
  EXPECT_GE(stats.at("cache_evictions").as_int(), 40);
  EXPECT_EQ(stats.at("subscriptions").as_int(), 1);
  // Non-incremental daemon: the counters exist and stay zero.
  EXPECT_EQ(stats.at("incremental_hits").as_int(), 0);
  EXPECT_EQ(stats.at("checkpoints").as_int(), 0);

  client.shutdown_server();
  serve_thread.join();
}

TEST(SocketServer, IncrementalDaemonReportsReuseAndPinDiagnostics) {
  SocketServerOptions options;
  options.incremental = true;
  SocketServer server(socket_path("incremental"), options);
  std::thread serve_thread([&server]() { server.serve(); });
  DaemonClient client(server.socket_path());

  client.register_network("net", make_network(5));
  service::SolveJob sub =
      make_job("sub", 71, service::Objective::kMaxFrameRate);
  sub.resolve_on_update = true;
  (void)client.wait(client.submit(sub));

  const graph::Edge e = first_edge(5);
  std::vector<graph::LinkUpdate> delta = {
      graph::LinkUpdate{e.from, e.to, e.attr}};
  for (int i = 1; i <= 3; ++i) {
    delta[0].attr.bandwidth_mbps = 100.0 + i;
    ASSERT_EQ(client.apply_link_updates("net", delta).size(), 1u);
  }

  const util::Json stats = client.stats();
  // Capture on the first solve (one miss), column reuse on every delta.
  EXPECT_EQ(stats.at("incremental_misses").as_int(), 1);
  EXPECT_EQ(stats.at("incremental_hits").as_int(), 3);
  EXPECT_GT(stats.at("incremental_columns_reused").as_int(), 0);
  EXPECT_EQ(stats.at("checkpoints").as_int(), 1);
  EXPECT_GT(stats.at("checkpoint_bytes").as_int(), 0);
  // Steady state: the only pin is the subscription's CURRENT revision,
  // which is not superseded — so no pinned superseded revisions.
  EXPECT_EQ(stats.at("pinned_revisions").as_int(), 0);
  EXPECT_EQ(stats.at("pinned_bytes").as_int(), 0);

  client.shutdown_server();
  serve_thread.join();
}

}  // namespace
}  // namespace elpc::daemon
