// Hostile-client fuzzing of the wire front end: truncated JSON, wrong
// field types, negative tickets, oversized unterminated frames, and
// mid-frame disconnects.  The invariant under every input: the daemon
// answers (or closes just that connection) and keeps serving real work
// afterwards — plus the DaemonClient retry policy that papers over
// transient connection loss.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.hpp"
#include "daemon/socket_server.hpp"
#include "graph/generators.hpp"
#include "pipeline/generator.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"

namespace elpc::daemon {
namespace {

graph::Network make_network(std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::random_connected_network(rng, 10, 50,
                                         graph::AttributeRanges{});
}

service::SolveJob make_job(const std::string& id, std::uint64_t pseed) {
  util::Rng rng(pseed);
  service::SolveJob job;
  job.id = id;
  job.network = "net";
  job.pipeline = pipeline::random_pipeline(rng, 4, {});
  job.source = 0;
  job.destination = 9;
  job.objective = service::Objective::kMinDelay;
  job.cost = service::default_cost(job.objective);
  return job;
}

std::string socket_path(const std::string& tag) {
  return ::testing::TempDir() + "/elpc_fuzz_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// Connects raw (no framing helper) so the test can write partial
/// frames and slam the connection shut mid-byte.
int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(SocketServer, SurvivesMalformedAndHostileFrames) {
  SocketServer server(socket_path("hostile"), SocketServerOptions{});
  std::thread serve_thread([&server]() { server.serve(); });

  // Every frame that parses — however wrong its shape — answers
  // ok=false on the same connection.
  const std::vector<std::string> bad_frames = {
      R"({"verb": "sub)",                        // truncated JSON
      R"("just a string")",                      // not an object
      R"({"verb": 42})",                         // wrong-typed verb
      R"({"verb": "poll"})",                     // missing ticket
      R"({"verb": "poll", "ticket": "abc"})",    // wrong-typed ticket
      R"({"verb": "poll", "ticket": -3})",       // negative ticket
      R"({"verb": "submit", "job": 17})",        // wrong-typed job
      R"({"verb": "submit", "job": {}})",        // empty job
      R"({"verb": "drain", "timeout_ms": []})",  // wrong-typed timeout
      R"({"verb": "apply_link_updates", "network": "nope", "updates": 3})",
      "",                                        // empty line
  };
  {
    util::UnixSocket hostile = util::UnixSocket::connect(server.socket_path());
    for (const std::string& frame : bad_frames) {
      hostile.send_line(frame);
      const std::optional<std::string> answer = hostile.recv_line();
      ASSERT_TRUE(answer.has_value()) << frame;
      EXPECT_FALSE(util::Json::parse(*answer).at("ok").as_bool()) << frame;
    }
  }

  // Mid-frame disconnects: a partial frame with no terminator, then an
  // abrupt close.  Repeat a few times — each costs the daemon one
  // handler thread that must wind down cleanly.
  for (int i = 0; i < 5; ++i) {
    const int fd = raw_connect(server.socket_path());
    ASSERT_GE(fd, 0);
    const char partial[] = "{\"verb\": \"submit\", \"job";
    (void)::send(fd, partial, sizeof(partial) - 1, MSG_NOSIGNAL);
    ::close(fd);
  }

  // An oversized unterminated frame trips the recv byte cap: the server
  // answers one protocol-error frame (when the torn stream still lets
  // it) and closes that connection — it must never buffer unboundedly.
  {
    const int fd = raw_connect(server.socket_path());
    ASSERT_GE(fd, 0);
    const std::string chunk(1 << 20, 'x');  // 1 MiB, no newline
    for (int i = 0; i < 17; ++i) {          // past the 16 MiB default cap
      if (::send(fd, chunk.data(), chunk.size(), MSG_NOSIGNAL) < 0) {
        break;  // server already gave up on us — the desired outcome
      }
    }
    ::close(fd);
  }

  // After all of the above the daemon still serves real work.
  DaemonClient client(server.socket_path());
  client.register_network("net", make_network(3));
  const Ticket ticket = client.submit(make_job("alive", 120));
  EXPECT_EQ(client.wait(ticket).at("state").as_string(), "done");

  client.shutdown_server();
  serve_thread.join();
}

TEST(DaemonClient, RetriesReconnectAfterTransientConnectionLoss) {
  util::UnixListener listener(socket_path("retry"));
  std::thread flaky_server([&listener]() {
    // First connection: accepted, then dropped without an answer — the
    // "daemon restarted under the client" shape.
    {
      std::optional<util::UnixSocket> first = listener.accept();
      ASSERT_TRUE(first.has_value());
    }  // closed on scope exit
    // Second connection (the retry): answer one request properly.
    std::optional<util::UnixSocket> second = listener.accept();
    ASSERT_TRUE(second.has_value());
    const std::optional<std::string> line = second->recv_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(util::Json::parse(*line).at("verb").as_string(), "noop");
    second->send_line(R"({"ok": true, "echo": 1})");
  });

  DaemonClientOptions options;
  options.max_retries = 3;
  options.backoff_ms = 1;  // keep the test fast; jitter still applies
  // The hand-rolled flaky server above speaks no `hello`; pin v1 so the
  // constructor does not block negotiating against it (this test is
  // about the retry policy, not the protocol version).
  options.protocol = ProtocolPreference::kV1;
  DaemonClient client(listener.path(), options);
  util::Json frame = util::JsonObject{};
  frame.set("verb", "noop");
  const util::Json response = client.request(frame);
  EXPECT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("echo").as_int(), 1);
  flaky_server.join();
}

TEST(DaemonClient, ZeroRetriesSurfacesTheFirstFailure) {
  util::UnixListener listener(socket_path("noretry"));
  std::thread closing_server([&listener]() {
    // Drop every connection unanswered until the listener closes.
    while (std::optional<util::UnixSocket> peer = listener.accept()) {
    }
  });

  DaemonClientOptions options;
  options.max_retries = 0;
  options.protocol = ProtocolPreference::kV1;  // fake server, no hello
  DaemonClient client(listener.path(), options);
  util::Json frame = util::JsonObject{};
  frame.set("verb", "noop");
  EXPECT_THROW((void)client.request(frame), util::SocketError);

  listener.close();
  closing_server.join();
}

}  // namespace
}  // namespace elpc::daemon
