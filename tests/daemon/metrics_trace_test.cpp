#include "daemon/trace.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.hpp"
#include "daemon/socket_server.hpp"
#include "graph/generators.hpp"
#include "pipeline/generator.hpp"
#include "service/batch_engine.hpp"
#include "service/serialize.hpp"
#include "util/rng.hpp"

namespace elpc::daemon {
namespace {

graph::Network make_network(std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::random_connected_network(rng, 10, 50,
                                         graph::AttributeRanges{});
}

service::SolveJob make_job(const std::string& id, std::uint64_t pseed,
                           service::Objective objective) {
  util::Rng rng(pseed);
  service::SolveJob job;
  job.id = id;
  job.network = "net";
  job.pipeline = pipeline::random_pipeline(rng, 4, {});
  job.source = 0;
  job.destination = 9;
  job.objective = objective;
  job.cost = service::default_cost(objective);
  return job;
}

std::string socket_path(const std::string& tag) {
  return ::testing::TempDir() + "/elpc_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// Sums every `<metric> <value>` sample whose name starts with `metric`
/// (i.e. across all label children) in a Prometheus text exposition.
double sum_samples(const std::string& text, const std::string& metric) {
  std::istringstream stream(text);
  std::string line;
  double total = 0.0;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    if (line.rfind(metric, 0) != 0) {
      continue;
    }
    // Next char must end the name: either the label brace or the value
    // separator (so "elpc_e2e_ms" does not match "elpc_e2e_ms_count").
    const char next = line[metric.size()];
    if (next != '{' && next != ' ') {
      continue;
    }
    const std::size_t space = line.rfind(' ');
    total += std::stod(line.substr(space + 1));
  }
  return total;
}

// ---------------------------------------------------------------------------
// SlowLog unit behaviour (deterministic, no daemon).

TEST(DaemonMetrics, SlowLogRingEvictsOldestFirst) {
  SlowLog log(3);
  for (std::uint64_t ticket = 1; ticket <= 5; ++ticket) {
    TraceSpan span;
    span.ticket = ticket;
    log.add(span);
  }
  EXPECT_EQ(log.total_added(), 5u);
  EXPECT_EQ(log.capacity(), 3u);
  const std::vector<TraceSpan> entries = log.entries();
  ASSERT_EQ(entries.size(), 3u);
  // Oldest (tickets 1, 2) evicted; survivors in arrival order.
  EXPECT_EQ(entries[0].ticket, 3u);
  EXPECT_EQ(entries[1].ticket, 4u);
  EXPECT_EQ(entries[2].ticket, 5u);
}

TEST(DaemonMetrics, SpanToJsonCarriesEveryField) {
  TraceSpan span;
  span.ticket = 42;
  span.job_id = "job7";
  span.state = "done";
  span.objective = "framerate";
  span.kernel = "scalar";
  span.incremental = true;
  span.queue_wait_ms = 1.5;
  span.solve_ms = 2.5;
  span.e2e_ms = 5.0;
  span.dp_columns = 10;
  span.columns_total = 8;
  span.columns_reused = 6;
  span.completed_unix_ms = 1700000000000;
  const util::Json json = span_to_json(span);
  EXPECT_EQ(json.at("ticket").as_int(), 42);
  EXPECT_EQ(json.at("job_id").as_string(), "job7");
  EXPECT_EQ(json.at("state").as_string(), "done");
  EXPECT_EQ(json.at("objective").as_string(), "framerate");
  EXPECT_EQ(json.at("kernel").as_string(), "scalar");
  EXPECT_TRUE(json.at("incremental").as_bool());
  EXPECT_DOUBLE_EQ(json.at("queue_wait_ms").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(json.at("solve_ms").as_number(), 2.5);
  EXPECT_DOUBLE_EQ(json.at("e2e_ms").as_number(), 5.0);
  EXPECT_EQ(json.at("dp_columns").as_int(), 10);
  EXPECT_EQ(json.at("columns_total").as_int(), 8);
  EXPECT_EQ(json.at("columns_reused").as_int(), 6);
  EXPECT_EQ(json.at("completed_unix_ms").as_int(), 1700000000000);
}

// ---------------------------------------------------------------------------
// End to end over a live daemon: spans feed the histograms, the `metrics`
// verb serves a parseable exposition, `stats` embeds the snapshot plus
// uptime/build info, and the slowlog captures the slow solves — all
// without perturbing canonical results.

TEST(DaemonMetrics, LifecycleSpansFeedHistogramsAndSlowlog) {
  SocketServerOptions options;
  options.threads = 2;
  options.start_paused = true;  // guarantee measurable queue wait
  options.slow_ms = 1;          // everything queued past the sleep is slow
  SocketServer server(socket_path("metrics"), options);
  std::thread serve_thread([&server]() { server.serve(); });

  DaemonClient client(server.socket_path());
  client.register_network("net", make_network(3));

  std::vector<service::SolveJob> jobs;
  jobs.push_back(make_job("delay0", 80, service::Objective::kMinDelay));
  jobs.push_back(make_job("fps0", 81, service::Objective::kMaxFrameRate));
  const Ticket t0 = client.submit(jobs[0]);
  const Ticket t1 = client.submit(jobs[1]);
  const Ticket doomed =
      client.submit(make_job("doomed", 82, service::Objective::kMinDelay));
  EXPECT_TRUE(client.cancel(doomed));

  // Everything sits queued through this sleep, so the surviving jobs'
  // queue wait (and thus e2e) is at least ~5 ms — deterministically past
  // the 1 ms slowlog threshold.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  client.resume();
  EXPECT_EQ(client.wait(t0).at("state").as_string(), "done");
  const util::Json fps_result = client.wait(t1);
  EXPECT_EQ(fps_result.at("state").as_string(), "done");

  // --- stats: counters, uptime, build info, embedded metrics snapshot.
  const util::Json stats = client.stats();
  EXPECT_EQ(stats.at("done").as_int(), 2);
  EXPECT_EQ(stats.at("cancelled").as_int(), 1);
  EXPECT_GE(stats.at("uptime_ms").as_number(), 5.0);
  EXPECT_GT(stats.at("started_unix_ms").as_int(), 0);
  EXPECT_EQ(stats.at("slow_ms").as_int(), 1);
  const util::Json& build = stats.at("build");
  EXPECT_FALSE(build.at("compiler").as_string().empty());
  EXPECT_FALSE(build.at("kernels_available").as_string().empty());

  // Span conservation in the embedded snapshot: one e2e/queue-wait sample
  // per terminal ticket, including the cancelled one.
  const util::Json& histograms = stats.at("metrics").at("histograms");
  EXPECT_EQ(histograms.at("elpc_e2e_ms").at("count").as_int(), 3);
  EXPECT_EQ(histograms.at("elpc_queue_wait_ms").at("count").as_int(), 3);
  // The done jobs waited through the 5 ms paused window.
  EXPECT_GE(histograms.at("elpc_queue_wait_ms").at("max_ms").as_number(), 5.0);
  EXPECT_LE(histograms.at("elpc_e2e_ms").at("p99_ms").as_number(),
            histograms.at("elpc_e2e_ms").at("max_ms").as_number());

  // --- metrics verb: a valid exposition with the expected families and
  // the same conservation property.
  const std::string text = client.metrics();
  for (const char* needle :
       {"# TYPE elpc_e2e_ms histogram", "# TYPE elpc_queue_wait_ms histogram",
        "# TYPE elpc_solve_ms histogram", "# TYPE elpc_jobs_submitted_total counter",
        "# TYPE elpc_queued gauge", "objective=\"framerate\"",
        "objective=\"delay\"", "kernel="}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  EXPECT_DOUBLE_EQ(sum_samples(text, "elpc_e2e_ms_count"), 3.0);
  EXPECT_DOUBLE_EQ(sum_samples(text, "elpc_jobs_submitted_total"), 3.0);
  EXPECT_DOUBLE_EQ(sum_samples(text, "elpc_jobs_done_total"), 2.0);
  EXPECT_DOUBLE_EQ(sum_samples(text, "elpc_jobs_cancelled_total"), 1.0);
  // Completed solves only: the cancelled job never ran.
  EXPECT_DOUBLE_EQ(sum_samples(text, "elpc_solve_ms_count"), 2.0);

  // --- slowlog: the two done jobs waited through the 5 ms paused window,
  // so both deterministically crossed the 1 ms threshold (the instantly
  // cancelled ticket may or may not have).
  const util::Json slowlog = client.slowlog();
  EXPECT_EQ(slowlog.at("slow_ms").as_int(), 1);
  EXPECT_GE(slowlog.at("total").as_int(), 2);
  const util::JsonArray& entries = slowlog.at("entries").as_array();
  ASSERT_GE(entries.size(), 2u);
  for (const util::Json& entry : entries) {
    EXPECT_GE(entry.at("e2e_ms").as_number(), 1.0);
    EXPECT_FALSE(entry.at("state").as_string().empty());
  }

  // --- tracing must not perturb answers: the daemon's canonical result
  // JSON is byte-identical to a direct, untraced engine solve.
  service::BatchEngine direct;
  direct.register_network("net", make_network(3));
  const std::vector<service::SolveResult> expected = direct.solve(jobs);
  EXPECT_EQ(client.wait(t0).at("result").dump(),
            service::result_entry_to_json(expected[0]).dump());
  EXPECT_EQ(fps_result.at("result").dump(),
            service::result_entry_to_json(expected[1]).dump());

  client.shutdown_server();
  serve_thread.join();
}

}  // namespace
}  // namespace elpc::daemon
