// Protocol-v2 binary codec unit tests: header parsing, the result
// descriptor table, and the link-update table.  The load-bearing
// property is BYTE-identity — decoding a table and re-serializing the
// entries as canonical JSON must reproduce the v1 wire bytes exactly,
// doubles included — plus strict rejection of every truncation and
// out-of-range descriptor (a malformed frame must never decode to a
// plausible-looking result).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "daemon/wire_format.hpp"
#include "mapping/mapping.hpp"
#include "service/serialize.hpp"

namespace elpc::daemon::wire {
namespace {

service::SolveResult feasible_result() {
  service::SolveResult r;
  r.job_id = "job-α";  // UTF-8 crosses the blob verbatim
  r.network = "net";
  r.network_revision = 7;
  r.algorithm = "ELPC";
  r.objective = service::Objective::kMaxFrameRate;
  r.result.feasible = true;
  r.result.seconds = 0.1;  // not exactly representable — bit-exactness bait
  r.result.mapping = mapping::Mapping({0, 3, 3, 9});
  return r;
}

service::SolveResult infeasible_result() {
  service::SolveResult r;
  r.job_id = "j2";
  r.network = "net";
  r.network_revision = 2;
  r.algorithm = "Greedy";
  r.objective = service::Objective::kMinDelay;
  r.result.feasible = false;
  r.result.reason = "no feasible path";
  return r;
}

service::SolveResult failed_result() {
  service::SolveResult r;
  r.job_id = "j3";
  r.network = "net";
  r.algorithm = "NoSuch";
  r.error = "unknown algorithm 'NoSuch'";
  return r;
}

TEST(WireFormat, HeaderRoundTripsAndRejectsGarbage) {
  const std::string header =
      encode_header(FrameType::kResultTable, 0, 0xDEADBEEFu);
  ASSERT_EQ(header.size(), kHeaderBytes);
  EXPECT_TRUE(is_frame_start(static_cast<unsigned char>(header[0])));
  EXPECT_FALSE(is_frame_start('{'));

  const std::optional<FrameHeader> parsed = parse_header(header);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, FrameType::kResultTable);
  EXPECT_EQ(parsed->flags, 0);
  EXPECT_EQ(parsed->length, 0xDEADBEEFu);

  // Fewer than 8 bytes buffered: keep reading, not an error.
  EXPECT_FALSE(parse_header(header.substr(0, kHeaderBytes - 1)).has_value());
  EXPECT_FALSE(parse_header("").has_value());

  // Wrong second magic byte: the stream is not a frame.
  std::string bad_magic = header;
  bad_magic[1] = '\x00';
  EXPECT_THROW((void)parse_header(bad_magic), WireFormatError);

  // Reserved flags must be zero until a version defines them.
  std::string bad_flags = header;
  bad_flags[3] = '\x01';
  EXPECT_THROW((void)parse_header(bad_flags), WireFormatError);
}

TEST(WireFormat, ResultTableRoundTripsEveryEntryShape) {
  const std::vector<service::SolveResult> results = {
      feasible_result(), infeasible_result(), failed_result()};
  const std::string payload = encode_result_table(results);
  const std::vector<service::SolveResult> decoded =
      decode_result_table(payload);
  ASSERT_EQ(decoded.size(), results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    // Field-level equality AND canonical-JSON byte identity: the wire
    // contract is that a v2 table re-serializes exactly as v1 would
    // have sent the same entry.
    EXPECT_EQ(decoded[i].job_id, results[i].job_id);
    EXPECT_EQ(decoded[i].network, results[i].network);
    EXPECT_EQ(decoded[i].network_revision, results[i].network_revision);
    EXPECT_EQ(decoded[i].algorithm, results[i].algorithm);
    EXPECT_EQ(decoded[i].objective, results[i].objective);
    EXPECT_EQ(decoded[i].result.feasible, results[i].result.feasible);
    EXPECT_EQ(decoded[i].result.reason, results[i].result.reason);
    EXPECT_EQ(decoded[i].result.mapping.assignment(),
              results[i].result.mapping.assignment());
    EXPECT_EQ(decoded[i].error, results[i].error);
    EXPECT_EQ(service::result_entry_to_json(decoded[i]).dump(),
              service::result_entry_to_json(results[i]).dump())
        << "entry " << i;
  }
}

TEST(WireFormat, SecondsCrossBitExact) {
  // %.17g JSON already round-trips doubles; the binary path must be
  // bit-exact too, including values JSON text would render awkwardly.
  const double values[] = {0.1,
                           1.0 / 3.0,
                           1e-300,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           -0.0};
  for (const double seconds : values) {
    service::SolveResult r = feasible_result();
    r.result.seconds = seconds;
    const std::vector<service::SolveResult> decoded =
        decode_result_table(encode_result_table({&r, 1}));
    ASSERT_EQ(decoded.size(), 1u);
    std::uint64_t sent = 0, got = 0;
    std::memcpy(&sent, &seconds, sizeof(sent));
    std::memcpy(&got, &decoded[0].result.seconds, sizeof(got));
    EXPECT_EQ(sent, got) << "seconds=" << seconds;
  }
}

TEST(WireFormat, EmptyTableRoundTrips) {
  const std::string payload = encode_result_table({});
  EXPECT_TRUE(decode_result_table(payload).empty());
}

TEST(WireFormat, EveryTruncationOfAResultTableIsRejected) {
  const std::vector<service::SolveResult> results = {feasible_result(),
                                                     infeasible_result()};
  const std::string payload = encode_result_table(results);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_THROW((void)decode_result_table(payload.substr(0, cut)),
                 WireFormatError)
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(WireFormat, OutOfRangeDescriptorIsRejected) {
  const service::SolveResult result = feasible_result();
  std::string payload = encode_result_table({&result, 1});
  // Corrupt the first descriptor's length (bytes 8..11: u32 count, then
  // {u32 offset, u32 length}) to reach past the blob region.
  payload[8] = '\xFF';
  payload[9] = '\xFF';
  payload[10] = '\xFF';
  payload[11] = '\x7F';
  EXPECT_THROW((void)decode_result_table(payload), WireFormatError);
}

TEST(WireFormat, NodeIdsBeyond32BitsRefuseToEncode) {
  service::SolveResult r = feasible_result();
  r.result.mapping = mapping::Mapping({0, (std::uint64_t{1} << 33)});
  EXPECT_THROW((void)encode_result_table({&r, 1}), WireFormatError);
}

TEST(WireFormat, LinkUpdateTableRoundTrips) {
  std::vector<graph::LinkUpdate> updates;
  for (int i = 0; i < 3; ++i) {
    graph::LinkUpdate update;
    update.from = static_cast<graph::NodeId>(i);
    update.to = static_cast<graph::NodeId>(i + 1);
    update.attr.bandwidth_mbps = 100.5 + i;
    update.attr.min_delay_s = 0.001 * (i + 1);
    updates.push_back(update);
  }
  const std::string payload = encode_link_update_table("net-0", updates);
  const LinkUpdateTable table = decode_link_update_table(payload);
  EXPECT_EQ(table.network, "net-0");
  ASSERT_EQ(table.updates.size(), updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(table.updates[i].from, updates[i].from);
    EXPECT_EQ(table.updates[i].to, updates[i].to);
    EXPECT_EQ(table.updates[i].attr.bandwidth_mbps,
              updates[i].attr.bandwidth_mbps);
    EXPECT_EQ(table.updates[i].attr.min_delay_s, updates[i].attr.min_delay_s);
  }

  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_THROW((void)decode_link_update_table(payload.substr(0, cut)),
                 WireFormatError)
        << "prefix of " << cut << " bytes decoded";
  }
}

}  // namespace
}  // namespace elpc::daemon::wire
