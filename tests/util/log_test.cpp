#include "util/log.hpp"

#include <gtest/gtest.h>

#include "util/timer.hpp"

namespace elpc::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, MacroCompilesAndRespectsThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Nothing observable to assert without capturing stderr; this verifies
  // the macro's statement form composes with control flow.
  if (true)
    ELPC_LOG(LogLevel::kInfo) << "suppressed " << 42;
  ELPC_LOG(LogLevel::kError) << "also suppressed at kOff";
  SUCCEED();
}

TEST(Log, BelowThresholdSkipsMessageConstruction) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  bool evaluated = false;
  auto expensive = [&evaluated]() {
    evaluated = true;
    return std::string("payload");
  };
  ELPC_LOG(LogLevel::kDebug) << expensive();
  EXPECT_FALSE(evaluated) << "suppressed levels must not evaluate operands";
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  // Busy-wait a tiny amount to get a non-zero reading.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + 1e-9;
  }
  EXPECT_GE(timer.elapsed_seconds(), 0.0);
  EXPECT_GE(timer.elapsed_ms(), timer.elapsed_seconds());  // ms >= s scale
}

TEST(Timer, ResetRestartsClock) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + 1e-9;
  }
  const double before = timer.elapsed_seconds();
  timer.reset();
  EXPECT_LE(timer.elapsed_seconds(), before + 1.0);
}

}  // namespace
}  // namespace elpc::util
