#include "util/json.hpp"

#include <gtest/gtest.h>

namespace elpc::util {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_number(), 3.25);
  EXPECT_EQ(Json::parse("-17").as_int(), -17);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, ScientificNotation) {
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5E-2").as_number(), -0.025);
}

TEST(JsonParse, Arrays) {
  const Json v = Json::parse("[1, 2, 3]");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.as_array().size(), 3u);
  EXPECT_EQ(v.as_array()[2].as_int(), 3);
}

TEST(JsonParse, NestedObjects) {
  const Json v = Json::parse(R"({"a": {"b": [true, null]}, "c": "x"})");
  EXPECT_TRUE(v.at("a").at("b").as_array()[0].as_bool());
  EXPECT_TRUE(v.at("a").at("b").as_array()[1].is_null());
  EXPECT_EQ(v.at("c").as_string(), "x");
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(Json::parse("[]").as_array().empty());
  EXPECT_TRUE(Json::parse("{}").as_object().empty());
}

TEST(JsonParse, StringEscapes) {
  const Json v = Json::parse(R"("a\"b\\c\nd\te")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\te");
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  // U+00E9 (e-acute) encodes as two UTF-8 bytes.
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");
}

TEST(JsonParse, WhitespaceTolerated) {
  const Json v = Json::parse("  {\n\t\"k\" :  1 }  ");
  EXPECT_EQ(v.at("k").as_int(), 1);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW((void)Json::parse(""), JsonError);
  EXPECT_THROW((void)Json::parse("{"), JsonError);
  EXPECT_THROW((void)Json::parse("[1,]"), JsonError);
  EXPECT_THROW((void)Json::parse("{\"a\":}"), JsonError);
  EXPECT_THROW((void)Json::parse("tru"), JsonError);
  EXPECT_THROW((void)Json::parse("1 2"), JsonError);
  EXPECT_THROW((void)Json::parse("\"unterminated"), JsonError);
}

TEST(JsonAccess, TypeMismatchThrows) {
  const Json v = Json::parse("[1]");
  EXPECT_THROW((void)v.as_object(), JsonError);
  EXPECT_THROW((void)v.as_string(), JsonError);
  EXPECT_THROW((void)v.at("k"), JsonError);
}

TEST(JsonAccess, MissingKeyThrows) {
  const Json v = Json::parse("{\"a\":1}");
  EXPECT_THROW((void)v.at("b"), JsonError);
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("b"));
}

TEST(JsonAccess, NonIntegralNumberRejectedByAsInt) {
  EXPECT_THROW((void)Json::parse("1.5").as_int(), JsonError);
}

TEST(JsonBuild, SetAndPushBack) {
  Json obj;
  obj.set("x", 1).set("y", "two");
  obj.set("list", Json(JsonArray{}));
  Json list;
  list.push_back(1).push_back(2);
  obj.set("list", std::move(list));
  EXPECT_EQ(obj.at("x").as_int(), 1);
  EXPECT_EQ(obj.at("list").as_array().size(), 2u);
}

TEST(JsonDump, CanonicalCompactForm) {
  Json obj;
  obj.set("b", 2).set("a", 1);
  // std::map sorts keys.
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":2}");
}

TEST(JsonDump, PrettyPrintIndents) {
  Json obj;
  obj.set("a", Json(JsonArray{Json(1), Json(2)}));
  const std::string out = obj.dump(2);
  EXPECT_NE(out.find("{\n  \"a\": [\n    1,\n    2\n  ]\n}"),
            std::string::npos);
}

TEST(JsonDump, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-3).dump(), "-3");
}

TEST(JsonDump, StringsAreEscaped) {
  EXPECT_EQ(Json("a\"b\n").dump(), "\"a\\\"b\\n\"");
}

TEST(JsonRoundTrip, ParseDumpParseIsIdentity) {
  const std::string doc =
      R"({"arr":[1,2.5,"s",null,true],"nested":{"k":[{"deep":-7}]}})";
  const Json v1 = Json::parse(doc);
  const Json v2 = Json::parse(v1.dump());
  EXPECT_EQ(v1, v2);
}

TEST(JsonRoundTrip, PreciseDoublesSurvive) {
  const double value = 0.1234567890123456;
  Json v;
  v.set("x", value);
  const Json back = Json::parse(v.dump());
  EXPECT_DOUBLE_EQ(back.at("x").as_number(), value);
}

}  // namespace
}  // namespace elpc::util
