#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace elpc::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    any_diff = any_diff || (a.next_u64() != b.next_u64());
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW((void)rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.uniform_int(0, 4));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.index(10), 10u);
  }
}

TEST(Rng, IndexRejectsZero) {
  Rng rng(9);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, UniformRealWithinBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, UniformRealMeanIsCentred) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform_real(0.0, 1.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliProbabilityRespected) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliRejectsBadProbability) {
  Rng rng(17);
  EXPECT_THROW((void)rng.bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW((void)rng.bernoulli(1.1), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, NormalZeroStddevIsDeterministic) {
  Rng rng(19);
  EXPECT_EQ(rng.normal(5.0, 0.0), 5.0);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(19);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, PickReturnsElement) {
  Rng rng(23);
  const std::vector<int> items = {1, 2, 3};
  for (int i = 0; i < 50; ++i) {
    const int v = rng.pick(items);
    EXPECT_TRUE(v == 1 || v == 2 || v == 3);
  }
}

TEST(Rng, PickRejectsEmpty) {
  Rng rng(23);
  const std::vector<int> empty;
  EXPECT_THROW((void)rng.pick(empty), std::invalid_argument);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> items(20);
  std::iota(items.begin(), items.end(), 0);
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(items, shuffled);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_NE(items, shuffled);  // probability of identity is ~1/50!
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(101);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  bool differ = false;
  for (int i = 0; i < 10; ++i) {
    differ = differ || (a.next_u64() != b.next_u64());
  }
  EXPECT_TRUE(differ);
}

TEST(Rng, SplitIsDeterministicGivenParentState) {
  Rng p1(202);
  Rng p2(202);
  Rng a = p1.split(5);
  Rng b = p2.split(5);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace elpc::util
