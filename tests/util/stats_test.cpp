#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace elpc::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.5);
  EXPECT_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MatchesDirectComputationOnRandomData) {
  Rng rng(5);
  RunningStats s;
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(rng.uniform_real(-10, 10));
    s.add(values.back());
  }
  const double mean = mean_of(values);
  double var = 0.0;
  for (double v : values) {
    var += (v - mean) * (v - mean);
  }
  var /= static_cast<double>(values.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(FitLine, ExactLineRecovered) {
  // y = 3x + 2 exactly.
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {5, 8, 11, 14, 17};
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineApproximatelyRecovered) {
  Rng rng(6);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double xv = rng.uniform_real(0, 100);
    x.push_back(xv);
    y.push_back(0.5 * xv + 7.0 + rng.normal(0.0, 1.0));
  }
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_NEAR(fit.intercept, 7.0, 0.5);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(FitLine, ConstantYHasUnitR2) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {4, 4, 4};
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
  EXPECT_EQ(fit.r_squared, 1.0);
}

TEST(FitLine, RejectsDegenerateInputs) {
  EXPECT_THROW((void)fit_line({1}, {1}), std::invalid_argument);
  EXPECT_THROW((void)fit_line({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW((void)fit_line({2, 2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 50), 2.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 75), 7.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> sample = {5, 1, 9, 3};
  EXPECT_EQ(percentile(sample, 0), 1.0);
  EXPECT_EQ(percentile(sample, 100), 9.0);
}

TEST(Percentile, RejectsBadInputs) {
  EXPECT_THROW((void)percentile({}, 50), std::invalid_argument);
  EXPECT_THROW((void)percentile({1}, -1), std::invalid_argument);
  EXPECT_THROW((void)percentile({1}, 101), std::invalid_argument);
}

TEST(MeanOf, Basic) {
  EXPECT_DOUBLE_EQ(mean_of({1, 2, 3, 4}), 2.5);
  EXPECT_THROW((void)mean_of({}), std::invalid_argument);
}

}  // namespace
}  // namespace elpc::util
