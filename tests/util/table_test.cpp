#include "util/table.hpp"

#include <gtest/gtest.h>

namespace elpc::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ColumnsAlign) {
  TextTable t({"c1", "c2"});
  t.add_row({"long-label", "7"});
  t.add_row({"x", "1234"});
  const std::string out = t.render();
  // All lines (except possibly the last trimmed column) share the same
  // position for the second column: check the numbers are right-aligned.
  EXPECT_NE(out.find("   7"), std::string::npos);
  EXPECT_NE(out.find("1234"), std::string::npos);
}

TEST(TextTable, RejectsWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, SetAlignValidatesColumn) {
  TextTable t({"a"});
  EXPECT_THROW(t.set_align(1, Align::kLeft), std::invalid_argument);
  t.set_align(0, Align::kRight);  // no throw
}

TEST(TextTable, RowCount) {
  TextTable t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TextTableCsv, Basic) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTableCsv, EscapesSpecialCharacters) {
  TextTable t({"a"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

}  // namespace
}  // namespace elpc::util
