#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace elpc::util {
namespace {

// ---------------------------------------------------------------------------
// Bucket math

TEST(Metrics, BucketBoundsAreLogScaleWithLeSemantics) {
  // Bucket 0 covers (0, 1µs]; each later finite bucket multiplies the
  // upper bound by 2^(1/4).
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_ms(0), 1e-3);
  for (std::size_t i = 1; i < Histogram::kFiniteBuckets; ++i) {
    EXPECT_NEAR(Histogram::bucket_upper_ms(i) / Histogram::bucket_upper_ms(i - 1),
                std::pow(2.0, 0.25), 1e-12)
        << "bucket " << i;
  }
  EXPECT_TRUE(std::isinf(
      Histogram::bucket_upper_ms(Histogram::kBucketCount - 1)));

  // `le` semantics must be exact: a sample equal to an upper bound lands
  // IN that bucket; a hair above lands in the next.
  for (std::size_t i = 0; i + 1 < Histogram::kFiniteBuckets; ++i) {
    const double upper = Histogram::bucket_upper_ms(i);
    EXPECT_EQ(Histogram::bucket_index(upper), i) << "at bound " << upper;
    EXPECT_EQ(Histogram::bucket_index(upper * (1.0 + 1e-9)), i + 1)
        << "above bound " << upper;
  }
}

TEST(Metrics, BucketIndexEdgeCases) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1e-12), 0u);  // sub-µs still bucket 0
  // Beyond the last finite bound: the +Inf overflow bucket.
  const double top = Histogram::bucket_upper_ms(Histogram::kFiniteBuckets - 1);
  EXPECT_EQ(Histogram::bucket_index(top), Histogram::kFiniteBuckets - 1);
  EXPECT_EQ(Histogram::bucket_index(top * 2.0), Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_index(1e12), Histogram::kBucketCount - 1);
}

// ---------------------------------------------------------------------------
// Recording + snapshots

TEST(Metrics, SnapshotCountDerivesFromBuckets) {
  Histogram h;
  h.record(0.5);
  h.record(5.0);
  h.record(5.0);
  h.record(-3.0);  // clamps to 0 -> bucket 0, still one sample
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_NEAR(snap.sum_ms, 10.5, 1e-12);
  EXPECT_DOUBLE_EQ(snap.max_ms, 5.0);
}

TEST(Metrics, PercentileEmptyIsZero) {
  const Histogram::Snapshot snap = Histogram{}.snapshot();
  EXPECT_EQ(snap.percentile(0.5), 0.0);
  EXPECT_EQ(snap.percentile(0.99), 0.0);
}

TEST(Metrics, PercentileInterpolatesWithinOneBucket) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.record(1.0);
  }
  const Histogram::Snapshot snap = h.snapshot();
  // All mass sits in the bucket containing 1.0 ms, so any percentile must
  // land inside that bucket's (lower, upper] range (the documented
  // one-bucket accuracy bound), and never above the observed max.
  const std::size_t bucket = Histogram::bucket_index(1.0);
  const double lower = Histogram::bucket_upper_ms(bucket - 1);
  for (const double q : {0.5, 0.9, 0.99}) {
    const double p = snap.percentile(q);
    EXPECT_GE(p, lower) << "q=" << q;
    EXPECT_LE(p, snap.max_ms) << "q=" << q;
  }
  // q=1 hits the bucket's top and clamps to the exact max.
  EXPECT_DOUBLE_EQ(snap.percentile(1.0), 1.0);
}

TEST(Metrics, PercentileSeparatesWellSpacedModes) {
  Histogram h;
  for (int i = 0; i < 90; ++i) {
    h.record(1.0);
  }
  for (int i = 0; i < 10; ++i) {
    h.record(1000.0);
  }
  const Histogram::Snapshot snap = h.snapshot();
  // p50 resolves to the 1 ms mode, p99 to the 1000 ms mode.
  EXPECT_LT(snap.percentile(0.5), 2.0);
  const double lower_1000 =
      Histogram::bucket_upper_ms(Histogram::bucket_index(1000.0) - 1);
  EXPECT_GE(snap.percentile(0.99), lower_1000);
  EXPECT_LE(snap.percentile(0.99), snap.max_ms);
  EXPECT_DOUBLE_EQ(snap.max_ms, 1000.0);
}

TEST(Metrics, OverflowBucketClampsToObservedMax) {
  Histogram h;
  const double huge = 1e9;  // far beyond the ~17.9 min top finite bound
  h.record(huge);
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.buckets[Histogram::kBucketCount - 1], 1u);
  EXPECT_DOUBLE_EQ(snap.max_ms, huge);
  // The overflow bucket has no finite upper bound; the percentile must
  // use the observed max instead of inventing a value.
  EXPECT_DOUBLE_EQ(snap.percentile(0.99), huge);
}

TEST(Metrics, SnapshotMergeAccumulatesShards) {
  Histogram a;
  Histogram b;
  a.record(1.0);
  a.record(2.0);
  b.record(1000.0);
  Histogram::Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, 3u);
  EXPECT_NEAR(merged.sum_ms, 1003.0, 1e-12);
  EXPECT_DOUBLE_EQ(merged.max_ms, 1000.0);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t bucket : merged.buckets) {
    bucket_total += bucket;
  }
  EXPECT_EQ(bucket_total, 3u);
}

// ---------------------------------------------------------------------------
// Registry semantics

TEST(Metrics, RegistryResolvesSameChildForSameNameAndLabels) {
  MetricsRegistry registry;
  Counter& a = registry.counter("jobs_total", "jobs", {{"kernel", "avx2"}});
  Counter& b = registry.counter("jobs_total", "jobs", {{"kernel", "avx2"}});
  EXPECT_EQ(&a, &b);
  Counter& c = registry.counter("jobs_total", "jobs", {{"kernel", "scalar"}});
  EXPECT_NE(&a, &c);
  a.add(2);
  b.add();
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, RegistryRejectsTypeMismatch) {
  MetricsRegistry registry;
  (void)registry.counter("thing_total", "a counter");
  EXPECT_THROW((void)registry.histogram("thing_total", "oops"),
               std::invalid_argument);
  EXPECT_THROW((void)registry.gauge("thing_total", "oops"),
               std::invalid_argument);
}

TEST(Metrics, FormatLabelsSortsAndEscapes) {
  EXPECT_EQ(format_labels({}), "");
  EXPECT_EQ(format_labels({{"b", "2"}, {"a", "1"}}), "a=\"1\",b=\"2\"");
  // Backslash, quote, and newline must be escaped per the text format.
  EXPECT_EQ(format_labels({{"k", "a\"b\\c\nd"}}), "k=\"a\\\"b\\\\c\\nd\"");
}

// ---------------------------------------------------------------------------
// Prometheus text exposition, validated by a small in-test parser.

struct ParsedExposition {
  std::map<std::string, std::string> help;  // family -> help text
  std::map<std::string, std::string> type;  // family -> type
  std::map<std::string, double> samples;    // full sample name -> value
  std::vector<std::string> sample_order;
};

/// Minimal parser for the exposition grammar this repo emits; fails the
/// surrounding test on any malformed line (gtest ASSERTs need a void
/// function, hence the out-parameter).
void parse_exposition(const std::string& text, ParsedExposition& parsed) {
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const bool is_help = line[2] == 'H';
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      (is_help ? parsed.help : parsed.type)[rest.substr(0, space)] =
          rest.substr(space + 1);
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
    // `name{labels} value` or `name value`; the value is the last
    // space-separated token (label values contain no raw spaces here).
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    parsed.samples[name] = std::stod(line.substr(space + 1));
    parsed.sample_order.push_back(name);
  }
}

TEST(Metrics, PrometheusTextRoundTripsThroughParser) {
  MetricsRegistry registry;
  registry.counter("elpc_demo_jobs_total", "jobs", {{"kernel", "avx2"}})
      .add(3);
  registry.gauge("elpc_demo_queue", "queue depth").set(2.0);
  Histogram& h = registry.histogram("elpc_demo_lat_ms", "latency",
                                    {{"objective", "delay"}});
  h.record(0.5);
  h.record(5.0);
  h.record(5000.0);

  const std::string text = registry.prometheus_text();
  SCOPED_TRACE(text);
  ParsedExposition parsed;
  parse_exposition(text, parsed);
  if (::testing::Test::HasFatalFailure()) {
    return;
  }

  // Every family carries HELP + TYPE.
  EXPECT_EQ(parsed.type.at("elpc_demo_jobs_total"), "counter");
  EXPECT_EQ(parsed.type.at("elpc_demo_queue"), "gauge");
  EXPECT_EQ(parsed.type.at("elpc_demo_lat_ms"), "histogram");
  EXPECT_EQ(parsed.help.at("elpc_demo_lat_ms"), "latency");

  EXPECT_DOUBLE_EQ(parsed.samples.at("elpc_demo_jobs_total{kernel=\"avx2\"}"),
                   3.0);
  EXPECT_DOUBLE_EQ(parsed.samples.at("elpc_demo_queue"), 2.0);

  // Histogram grammar: cumulative monotone buckets ending at +Inf, which
  // must equal _count; _sum matches the recorded total.
  double last_bucket = 0.0;
  double last_le = -1.0;
  double inf_bucket = -1.0;
  for (const std::string& name : parsed.sample_order) {
    const std::string prefix = "elpc_demo_lat_ms_bucket{objective=\"delay\",le=\"";
    if (name.rfind(prefix, 0) != 0) {
      continue;
    }
    const std::string le_text =
        name.substr(prefix.size(), name.size() - prefix.size() - 2);
    const double value = parsed.samples.at(name);
    EXPECT_GE(value, last_bucket) << "bucket counts must be cumulative";
    last_bucket = value;
    if (le_text == "+Inf") {
      inf_bucket = value;
    } else {
      const double le = std::stod(le_text);
      EXPECT_GT(le, last_le) << "le bounds must ascend";
      last_le = le;
    }
  }
  EXPECT_DOUBLE_EQ(inf_bucket, 3.0);
  EXPECT_DOUBLE_EQ(
      parsed.samples.at("elpc_demo_lat_ms_count{objective=\"delay\"}"), 3.0);
  EXPECT_NEAR(parsed.samples.at("elpc_demo_lat_ms_sum{objective=\"delay\"}"),
              5005.5, 1e-9);
}

TEST(Metrics, CollectorsRefreshGaugesOnExposition) {
  MetricsRegistry registry;
  Gauge& depth = registry.gauge("elpc_demo_depth", "depth");
  std::atomic<int> live{7};
  registry.on_collect([&]() { depth.set(static_cast<double>(live.load())); });
  EXPECT_NE(registry.prometheus_text().find("elpc_demo_depth 7"),
            std::string::npos);
  live.store(9);
  EXPECT_NE(registry.prometheus_text().find("elpc_demo_depth 9"),
            std::string::npos);
}

TEST(Metrics, JsonSnapshotCarriesPercentiles) {
  MetricsRegistry registry;
  registry.counter("elpc_demo_total", "c").add(4);
  Histogram& h = registry.histogram("elpc_demo_ms", "h", {{"k", "v"}});
  for (int i = 0; i < 10; ++i) {
    h.record(2.0);
  }
  const Json snap = registry.json_snapshot();
  EXPECT_EQ(snap.at("counters").at("elpc_demo_total").as_int(), 4);
  const Json& family = snap.at("histograms").at("elpc_demo_ms");
  EXPECT_EQ(family.at("count").as_int(), 10);
  EXPECT_NEAR(family.at("sum_ms").as_number(), 20.0, 1e-9);
  EXPECT_GT(family.at("p50_ms").as_number(), 0.0);
  EXPECT_LE(family.at("p99_ms").as_number(), family.at("max_ms").as_number());
}

// ---------------------------------------------------------------------------
// Concurrency: writers race recording while readers render — run under
// TSan in CI (the .github workflow's tsan job includes this suite).

TEST(Metrics, ConcurrentRecordAndRenderIsRaceFree) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("elpc_demo_ops_total", "ops");
  Histogram& latency = registry.histogram("elpc_demo_race_ms", "lat");
  Gauge& depth = registry.gauge("elpc_demo_race_depth", "depth");
  registry.on_collect([&]() { depth.set(1.0); });

  constexpr int kWriters = 4;
  constexpr int kSamplesPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w]() {
      for (int i = 0; i < kSamplesPerWriter; ++i) {
        counter.add();
        latency.record(0.001 * static_cast<double>((w * 31 + i) % 2000));
      }
    });
  }
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      const Histogram::Snapshot snap = latency.snapshot();
      std::uint64_t total = 0;
      for (const std::uint64_t bucket : snap.buckets) {
        total += bucket;
      }
      // Snapshot consistency: derived count always equals the bucket sum
      // read in the same pass, even mid-race.
      EXPECT_EQ(total, snap.count);
      (void)registry.prometheus_text();
      (void)registry.json_snapshot();
    }
  });
  for (std::thread& writer : writers) {
    writer.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kWriters) * kSamplesPerWriter);
  EXPECT_EQ(latency.snapshot().count,
            static_cast<std::uint64_t>(kWriters) * kSamplesPerWriter);
}

}  // namespace
}  // namespace elpc::util
