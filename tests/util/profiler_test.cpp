#include "util/profiler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/trace_context.hpp"

namespace elpc::util {
namespace {

/// The profiler is process-global state; every test starts and ends from
/// a clean, disabled slate so ordering between tests cannot matter.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::set_enabled(false);
    Profiler::set_ring_capacity(Profiler::kDefaultRingCapacity);
    Profiler::reset();
    clear_trace_context();
  }
  void TearDown() override { SetUp(); }
};

/// Runs `body` on a brand-new thread (therefore a brand-new ring, which
/// is what set_ring_capacity applies to) and joins it.
template <typename Fn>
void on_fresh_thread(Fn body) {
  std::thread worker(std::move(body));
  worker.join();
}

TEST_F(ProfilerTest, DisabledByDefaultRecordsNothing) {
  on_fresh_thread([] {
    const ProfileScope scope("solve", "engine");
    PhaseSegments segments("dp_column", "core", 2);
    for (std::size_t i = 0; i < 10; ++i) {
      segments.tick(i);
    }
  });
  const ProfilerSnapshot snapshot = Profiler::drain();
  EXPECT_TRUE(snapshot.events.empty());
  EXPECT_EQ(snapshot.recorded, 0u);
  EXPECT_EQ(snapshot.dropped, 0u);
  EXPECT_EQ(snapshot.drained, 0u);
}

TEST_F(ProfilerTest, ScopesBalanceAndCarryTheThreadTraceId) {
  Profiler::set_enabled(true);
  on_fresh_thread([] {
    const ScopedTraceContext trace("req-1");
    const ProfileScope outer("solve", "engine", 7);
    { const ProfileScope inner("arena", "core"); }
  });
  const ProfilerSnapshot snapshot = Profiler::drain();
  ASSERT_EQ(snapshot.events.size(), 4u);
  EXPECT_EQ(snapshot.recorded, 4u);
  EXPECT_EQ(snapshot.dropped, 0u);
  EXPECT_EQ(snapshot.drained, 4u);

  // drain() orders a thread's events by recording sequence, which for a
  // single thread is also non-decreasing in time.
  const std::vector<ProfileEvent>& events = snapshot.events;
  EXPECT_EQ(std::string(events[0].name), "solve");
  EXPECT_TRUE(events[0].begin);
  EXPECT_EQ(events[0].arg, 7u);
  EXPECT_EQ(std::string(events[1].name), "arena");
  EXPECT_TRUE(events[1].begin);
  EXPECT_EQ(std::string(events[2].name), "arena");
  EXPECT_FALSE(events[2].begin);
  EXPECT_EQ(std::string(events[3].name), "solve");
  EXPECT_FALSE(events[3].begin);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  for (const ProfileEvent& event : events) {
    EXPECT_EQ(event.trace_id, "req-1");
    EXPECT_EQ(std::string(event.category),
              event.name == std::string("arena") ? "core" : "engine");
  }

  // Everything was consumed: a second drain returns nothing new but the
  // cumulative accounting survives.
  const ProfilerSnapshot again = Profiler::drain();
  EXPECT_TRUE(again.events.empty());
  EXPECT_EQ(again.recorded, 4u);
  EXPECT_EQ(again.drained, 4u);
}

TEST_F(ProfilerTest, RingWrapEvictsOldestAndCountsDropped) {
  Profiler::set_enabled(true);
  Profiler::set_ring_capacity(8);  // applies to the fresh thread's ring
  constexpr std::size_t kScopes = 100;
  on_fresh_thread([] {
    for (std::size_t i = 0; i < kScopes; ++i) {
      const ProfileScope scope("tiny", "test", i);
    }
  });
  const ProfilerSnapshot snapshot = Profiler::drain();
  EXPECT_EQ(snapshot.recorded, 2 * kScopes);
  EXPECT_LE(snapshot.events.size(), 8u);
  EXPECT_FALSE(snapshot.events.empty());
  // Conservation: after a full drain of an idle ring, every recorded
  // event was either drained or evicted.
  EXPECT_EQ(snapshot.recorded, snapshot.drained + snapshot.dropped);
  // Oldest-first eviction means the survivors are the LAST events: the
  // final begin in the ring belongs to the final scope (ends carry no
  // arg, so look at the begins).
  std::uint64_t last_begin_arg = 0;
  for (const ProfileEvent& event : snapshot.events) {
    if (event.begin) {
      last_begin_arg = event.arg;
    }
  }
  EXPECT_EQ(last_begin_arg, kScopes - 1);
}

TEST_F(ProfilerTest, ScopeArmedAtConstructionBalancesAFlagFlip) {
  Profiler::set_enabled(true);
  on_fresh_thread([] {
    const ProfileScope scope("flip", "test");
    Profiler::set_enabled(false);  // mid-scope flip must not orphan the begin
  });
  const ProfilerSnapshot armed = Profiler::drain();
  ASSERT_EQ(armed.events.size(), 2u);
  EXPECT_TRUE(armed.events[0].begin);
  EXPECT_FALSE(armed.events[1].begin);

  // The mirror image: constructed disabled, enabling mid-scope records
  // nothing (the scope never armed).
  Profiler::reset();
  Profiler::set_enabled(false);
  on_fresh_thread([] {
    const ProfileScope scope("flip", "test");
    Profiler::set_enabled(true);
  });
  EXPECT_TRUE(Profiler::drain().events.empty());
}

TEST_F(ProfilerTest, PhaseSegmentsOpenEveryStrideTicksAndCloseOnExit) {
  Profiler::set_enabled(true);
  on_fresh_thread([] {
    PhaseSegments segments("dp_column", "core", 4);
    for (std::size_t i = 0; i < 10; ++i) {
      segments.tick(i);
    }
  });
  const ProfilerSnapshot snapshot = Profiler::drain();
  // Segments open at ticks 0, 4, 8; each open closes the previous one
  // and the destructor closes the last: 3 begins + 3 ends.
  ASSERT_EQ(snapshot.events.size(), 6u);
  std::vector<std::uint64_t> begin_args;
  int depth = 0;
  for (const ProfileEvent& event : snapshot.events) {
    if (event.begin) {
      begin_args.push_back(event.arg);
    }
    depth += event.begin ? 1 : -1;
    ASSERT_GE(depth, 0);
    ASSERT_LE(depth, 1);  // segments never nest
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(begin_args, (std::vector<std::uint64_t>{0, 4, 8}));
}

TEST_F(ProfilerTest, DrainMergesThreadsWithDistinctTids) {
  Profiler::set_enabled(true);
  constexpr int kThreads = 3;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] { const ProfileScope scope("worker", "test"); });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const ProfilerSnapshot snapshot = Profiler::drain();
  EXPECT_EQ(snapshot.events.size(), 2u * kThreads);
  EXPECT_GE(snapshot.threads, static_cast<std::size_t>(kThreads));
  std::map<unsigned, int> per_tid;
  for (const ProfileEvent& event : snapshot.events) {
    per_tid[event.tid] += 1;
  }
  EXPECT_EQ(per_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, count] : per_tid) {
    EXPECT_EQ(count, 2) << "tid " << tid;
  }
}

TEST_F(ProfilerTest, ScopedTraceContextNestsAndRestores) {
  EXPECT_EQ(trace_context(), "");
  EXPECT_EQ(trace_context_ref(), 0u);
  {
    const ScopedTraceContext outer("request-9");
    EXPECT_EQ(trace_context(), "request-9");
    const std::uint32_t outer_ref = trace_context_ref();
    EXPECT_NE(outer_ref, 0u);
    EXPECT_EQ(trace_ref_name(outer_ref), "request-9");
    {
      const ScopedTraceContext inner("job-3");
      EXPECT_EQ(trace_context(), "job-3");
      EXPECT_NE(trace_context_ref(), outer_ref);
    }
    // The inner scope restored the handler's id, not emptiness.
    EXPECT_EQ(trace_context(), "request-9");
    EXPECT_EQ(trace_context_ref(), outer_ref);
  }
  EXPECT_EQ(trace_context(), "");
  EXPECT_EQ(trace_context_ref(), 0u);
  // Interning is stable: the same id maps to the same ref forever.
  set_trace_context("request-9");
  EXPECT_EQ(trace_ref_name(trace_context_ref()), "request-9");
  clear_trace_context();
}

}  // namespace
}  // namespace elpc::util
