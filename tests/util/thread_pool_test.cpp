#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace elpc::util {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([]() { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, WorkerCountDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter]() { ++counter; }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) {
                                     throw std::logic_error("bad index");
                                   }
                                 }),
               std::logic_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      (void)pool.submit([&done]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++done;
      });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, ResultsArriveFromConcurrentWorkers) {
  ThreadPool pool(4);
  std::vector<std::future<std::size_t>> futures;
  for (std::size_t i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([i]() { return i * i; }));
  }
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

}  // namespace
}  // namespace elpc::util
