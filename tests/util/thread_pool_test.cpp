#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace elpc::util {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([]() { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, WorkerCountDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter]() { ++counter; }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) {
                                     throw std::logic_error("bad index");
                                   }
                                 }),
               std::logic_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      (void)pool.submit([&done]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++done;
      });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, ResultsArriveFromConcurrentWorkers) {
  ThreadPool pool(4);
  std::vector<std::future<std::size_t>> futures;
  for (std::size_t i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([i]() { return i * i; }));
  }
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(JobGroup, WaitsForAllSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  JobGroup group(pool);
  for (int i = 0; i < 100; ++i) {
    group.submit([&counter]() { ++counter; });
  }
  group.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(JobGroup, IsReusableAfterWait) {
  ThreadPool pool(2);
  JobGroup group(pool);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      group.submit([&counter]() { ++counter; });
    }
    group.wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(JobGroup, RethrowsFirstTaskExceptionAndClearsIt) {
  ThreadPool pool(2);
  JobGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.submit([i]() {
      if (i == 5) {
        throw std::runtime_error("task 5 failed");
      }
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // The error was consumed: the group works again.
  group.submit([]() {});
  group.wait();
}

TEST(JobGroup, SeveralGroupsShareOnePool) {
  ThreadPool pool(4);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  JobGroup ga(pool);
  JobGroup gb(pool);
  for (int i = 0; i < 50; ++i) {
    ga.submit([&a]() { ++a; });
    gb.submit([&b]() { ++b; });
  }
  ga.wait();
  gb.wait();
  EXPECT_EQ(a.load(), 50);
  EXPECT_EQ(b.load(), 50);
}

TEST(JobGroup, DestructorDrainsOutstandingTasks) {
  ThreadPool pool(1);
  std::atomic<int> done{0};
  {
    JobGroup group(pool);
    for (int i = 0; i < 10; ++i) {
      group.submit([&done]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++done;
      });
    }
  }  // destructor waits; tasks must not outlive the group's captures
  EXPECT_EQ(done.load(), 10);
}

}  // namespace
}  // namespace elpc::util
