#include "util/socket.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <string>
#include <thread>
#include <type_traits>

namespace elpc::util {
namespace {

std::string socket_path(const std::string& tag) {
  return ::testing::TempDir() + "/elpc_util_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(UnixSocket, LineFramedEchoRoundTrip) {
  UnixListener listener(socket_path("echo"));
  std::thread server([&listener]() {
    std::optional<UnixSocket> peer = listener.accept();
    ASSERT_TRUE(peer.has_value());
    for (;;) {
      const std::optional<std::string> line = peer->recv_line();
      if (!line.has_value()) {
        return;  // client closed
      }
      peer->send_line("echo:" + *line);
    }
  });

  UnixSocket client = UnixSocket::connect(listener.path());
  client.send_line("hello");
  EXPECT_EQ(client.recv_line(), "echo:hello");
  // Framing survives several messages on one connection, including
  // payloads that arrive faster than the peer reads them.
  for (int i = 0; i < 100; ++i) {
    client.send_line("m" + std::to_string(i));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(client.recv_line(), "echo:m" + std::to_string(i));
  }
  client.close();
  server.join();
}

TEST(UnixSocket, OverlongUnterminatedLineThrowsFrameError) {
  UnixListener listener(socket_path("cap"));
  std::thread server([&listener]() {
    std::optional<UnixSocket> peer = listener.accept();
    ASSERT_TRUE(peer.has_value());
    // A message under the cap still frames fine...
    peer->send_line(std::string(32, 'a'));
    // ...then one long unterminated burst; the peer will give up on us.
    try {
      peer->send_line(std::string(4096, 'b'));
    } catch (const SocketError&) {
      // The receiver may already have closed — also fine.
    }
  });

  UnixSocket client = UnixSocket::connect(listener.path());
  client.set_max_line_bytes(256);
  EXPECT_EQ(client.recv_line(), std::string(32, 'a'));
  // The 4 KiB frame exceeds the 256-byte cap long before its terminator
  // arrives: a protocol violation, not a transient failure.
  EXPECT_THROW((void)client.recv_line(), SocketFrameError);
  client.close();
  server.join();
}

TEST(UnixSocket, ZeroLineCapRejected) {
  // An uncapped buffer is exactly the failure mode the cap exists for.
  UnixSocket socket;
  EXPECT_THROW(socket.set_max_line_bytes(0), SocketError);
}

TEST(UnixSocket, FrameErrorIsASocketError) {
  // Callers catching SocketError (the transport failure umbrella) must
  // also see frame violations; only code that needs the distinction
  // catches the derived type.
  static_assert(std::is_base_of_v<SocketError, SocketFrameError>);
  static_assert(std::is_base_of_v<SocketError, SocketTimeout>);
}

TEST(UnixSocket, ConnectToNothingThrows) {
  EXPECT_THROW((void)UnixSocket::connect(socket_path("absent")),
               SocketError);
}

TEST(UnixSocket, OverlongPathRejectedNotTruncated) {
  EXPECT_THROW((void)UnixSocket::connect("/tmp/" + std::string(200, 'x')),
               SocketError);
}

TEST(UnixListener, RebindsOverStaleSocketFile) {
  const std::string path = socket_path("stale");
  { UnixListener first(path); }  // unlinked on destroy, path reusable
  {
    // A stale file at the path (a crashed daemon's leftover) must not
    // block the next bind.
    std::ofstream(path) << "stale";
    UnixListener second(path);
    EXPECT_EQ(second.path(), path);
  }
  UnixListener third(path);
  EXPECT_EQ(third.path(), path);
}

TEST(UnixListener, CloseUnblocksAccept) {
  UnixListener listener(socket_path("close"));
  std::thread acceptor([&listener]() {
    EXPECT_FALSE(listener.accept().has_value());
  });
  listener.close();
  acceptor.join();  // returns promptly instead of blocking forever
}

}  // namespace
}  // namespace elpc::util
