// FaultInjector — the chaos harness's probability points.  The injector
// is process-global, so every test here ends by disable()ing it; the
// suite also pins the zero-cost default (nothing configured => nothing
// fires) that production paths rely on.

#include "util/fault_injector.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

namespace elpc::util {
namespace {

/// RAII guard: whatever a test does, the process-global injector is
/// clean again when the test returns.
struct InjectorReset {
  ~InjectorReset() { FaultInjector::instance().disable(); }
};

TEST(FaultInjector, DisabledByDefaultAndNeverFires) {
  InjectorReset reset;
  FaultInjector& injector = FaultInjector::instance();
  injector.disable();
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.should_fire("arena_alloc"));
  EXPECT_FALSE(injector.maybe_stall("engine_stall"));
  EXPECT_EQ(injector.fired("arena_alloc"), 0u);
}

TEST(FaultInjector, CertainAndImpossiblePoints) {
  InjectorReset reset;
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("always=1.0,never=0.0", /*seed=*/7);
  EXPECT_TRUE(injector.enabled());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(injector.should_fire("always"));
    EXPECT_FALSE(injector.should_fire("never"));
    EXPECT_FALSE(injector.should_fire("unconfigured"));
  }
  EXPECT_EQ(injector.fired("always"), 50u);
  EXPECT_EQ(injector.fired("never"), 0u);
}

TEST(FaultInjector, ParamCarriesStallMilliseconds) {
  InjectorReset reset;
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("slow=1.0:25,plain=1.0", /*seed=*/3);
  EXPECT_DOUBLE_EQ(injector.param_ms("slow"), 25.0);
  EXPECT_DOUBLE_EQ(injector.param_ms("plain"), 0.0);
  EXPECT_DOUBLE_EQ(injector.param_ms("unconfigured"), 0.0);

  const auto before = std::chrono::steady_clock::now();
  EXPECT_TRUE(injector.maybe_stall("slow"));
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            25);
}

TEST(FaultInjector, SeedMakesDecisionStreamReproducible) {
  InjectorReset reset;
  FaultInjector& injector = FaultInjector::instance();
  const auto draw_sequence = [&injector](std::uint64_t seed) {
    injector.configure("coin=0.5", seed);
    std::vector<bool> draws;
    for (int i = 0; i < 64; ++i) {
      draws.push_back(injector.should_fire("coin"));
    }
    return draws;
  };
  const std::vector<bool> first = draw_sequence(42);
  const std::vector<bool> second = draw_sequence(42);
  EXPECT_EQ(first, second);  // same seed => the chaos run replays
  // Sanity: a fair coin over 64 draws is neither all-heads nor all-tails.
  EXPECT_NE(first, std::vector<bool>(64, true));
  EXPECT_NE(first, std::vector<bool>(64, false));
}

TEST(FaultInjector, CountersListEveryConfiguredPoint) {
  InjectorReset reset;
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("a=1.0,b=0.0", /*seed=*/1);
  (void)injector.should_fire("a");
  (void)injector.should_fire("a");
  bool saw_a = false;
  bool saw_b = false;
  for (const auto& [point, fired] : injector.counters()) {
    if (point == "a") {
      saw_a = true;
      EXPECT_EQ(fired, 2u);
    }
    if (point == "b") {
      saw_b = true;
      EXPECT_EQ(fired, 0u);
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(FaultInjector, MalformedSpecsRejected) {
  InjectorReset reset;
  FaultInjector& injector = FaultInjector::instance();
  for (const std::string spec :
       {"nodigits", "point=", "point=notanumber", "point=0.5:bad",
        "=0.5", "point=2.0extra"}) {
    EXPECT_THROW(injector.configure(spec), std::invalid_argument) << spec;
  }
  // An empty spec is valid and means "everything off".
  injector.configure("");
  EXPECT_FALSE(injector.enabled());
}

TEST(FaultInjector, DisableDropsEveryPoint) {
  InjectorReset reset;
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("x=1.0", /*seed=*/1);
  EXPECT_TRUE(injector.should_fire("x"));
  injector.disable();
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.should_fire("x"));
  EXPECT_TRUE(injector.counters().empty());
}

}  // namespace
}  // namespace elpc::util
