#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace elpc::util {
namespace {

ArgParser make_parser() {
  ArgParser parser("prog");
  parser.add_flag("verbose", "enable chatter");
  parser.add_int("count", 10, "how many");
  parser.add_double("rate", 1.5, "speed");
  parser.add_string("name", "default", "label");
  return parser;
}

TEST(ArgParser, DefaultsApply) {
  ArgParser p = make_parser();
  p.parse({});
  EXPECT_FALSE(p.flag("verbose"));
  EXPECT_EQ(p.get_int("count"), 10);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 1.5);
  EXPECT_EQ(p.get_string("name"), "default");
}

TEST(ArgParser, SpaceSeparatedValues) {
  ArgParser p = make_parser();
  p.parse({"--count", "42", "--name", "abc"});
  EXPECT_EQ(p.get_int("count"), 42);
  EXPECT_EQ(p.get_string("name"), "abc");
}

TEST(ArgParser, EqualsSeparatedValues) {
  ArgParser p = make_parser();
  p.parse({"--rate=2.75", "--name=x=y"});
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 2.75);
  EXPECT_EQ(p.get_string("name"), "x=y");
}

TEST(ArgParser, FlagsToggle) {
  ArgParser p = make_parser();
  p.parse({"--verbose"});
  EXPECT_TRUE(p.flag("verbose"));
}

TEST(ArgParser, FlagRejectsValue) {
  ArgParser p = make_parser();
  EXPECT_THROW(p.parse({"--verbose=1"}), std::invalid_argument);
}

TEST(ArgParser, UnknownOptionThrowsWithUsage) {
  ArgParser p = make_parser();
  try {
    p.parse({"--bogus"});
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--count"), std::string::npos)
        << "error should list known options";
  }
}

TEST(ArgParser, MissingValueThrows) {
  ArgParser p = make_parser();
  EXPECT_THROW(p.parse({"--count"}), std::invalid_argument);
}

TEST(ArgParser, BadNumberThrows) {
  ArgParser p = make_parser();
  EXPECT_THROW(p.parse({"--count", "abc"}), std::invalid_argument);
  ArgParser q = make_parser();
  EXPECT_THROW(q.parse({"--rate", "x"}), std::invalid_argument);
}

TEST(ArgParser, PositionalsCollected) {
  ArgParser p = make_parser();
  p.parse({"file1", "--count", "2", "file2"});
  EXPECT_EQ(p.positionals(), (std::vector<std::string>{"file1", "file2"}));
}

TEST(ArgParser, DoubleDashStopsOptionParsing) {
  ArgParser p = make_parser();
  p.parse({"--", "--count", "5"});
  EXPECT_EQ(p.get_int("count"), 10);  // untouched
  EXPECT_EQ(p.positionals(),
            (std::vector<std::string>{"--count", "5"}));
}

TEST(ArgParser, ArgcArgvOverloadSkipsProgramName) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--count", "3"};
  p.parse(3, argv);
  EXPECT_EQ(p.get_int("count"), 3);
}

TEST(ArgParser, TypeMismatchedAccessThrows) {
  ArgParser p = make_parser();
  p.parse({});
  EXPECT_THROW((void)p.get_int("rate"), std::invalid_argument);
  EXPECT_THROW((void)p.flag("count"), std::invalid_argument);
}

TEST(ArgParser, UsageListsOptionsAndDefaults) {
  ArgParser p = make_parser();
  const std::string usage = p.usage();
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("int=10"), std::string::npos);
  EXPECT_NE(usage.find("str=default"), std::string::npos);
}

}  // namespace
}  // namespace elpc::util
