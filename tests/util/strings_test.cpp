#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace elpc::util {
namespace {

TEST(Split, Basic) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, AdjacentDelimitersGiveEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(Split, LeadingAndTrailingDelimiters) {
  EXPECT_EQ(split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Split, NoDelimiter) {
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello\t\n"), "hello");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Trim, AllWhitespaceBecomesEmpty) {
  EXPECT_EQ(trim(" \t\r\n "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Trim, InteriorWhitespacePreserved) {
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-flag", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(FormatDouble, Rounds) {
  EXPECT_EQ(format_double(1.005, 1), "1.0");
  EXPECT_EQ(format_double(1.95, 1), "1.9");  // banker-ish via printf
  EXPECT_EQ(format_double(1.96, 1), "2.0");
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"only"}, ","), "only");
  EXPECT_EQ(join({}, ","), "");
}

}  // namespace
}  // namespace elpc::util
