#include "util/cpu_features.hpp"

#include <gtest/gtest.h>

#include "core/kernels/framerate_kernel.hpp"

namespace elpc::util {
namespace {

TEST(CpuFeatures, GetIsStableAndMatchesDetect) {
  const CpuFeatures& first = CpuFeatures::get();
  const CpuFeatures& second = CpuFeatures::get();
  EXPECT_EQ(&first, &second);  // one process-wide snapshot
  const CpuFeatures probed = CpuFeatures::detect();
  EXPECT_EQ(first.avx2, probed.avx2);
  EXPECT_EQ(first.avx512f, probed.avx512f);
}

TEST(CpuFeatures, KernelAvailabilityImpliesCpuSupport) {
  // available_kernels() must never offer a kernel the CPU cannot run —
  // that is the whole point of the runtime dispatch.
  const CpuFeatures& cpu = CpuFeatures::get();
  bool saw_scalar = false;
  for (const core::kernels::Kind kind : core::kernels::available_kernels()) {
    switch (kind) {
      case core::kernels::Kind::kScalar:
        saw_scalar = true;
        break;
      case core::kernels::Kind::kAvx2:
        EXPECT_TRUE(cpu.avx2);
        break;
      case core::kernels::Kind::kAvx512:
        EXPECT_TRUE(cpu.avx512f);
        break;
      case core::kernels::Kind::kAuto:
        FAIL() << "kAuto is a request, never an available kernel";
    }
  }
  EXPECT_TRUE(saw_scalar);  // the portable reference is unconditional
}

}  // namespace
}  // namespace elpc::util
