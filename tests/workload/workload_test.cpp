#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "workload/scenario.hpp"
#include "workload/small_case.hpp"
#include "workload/suite.hpp"

namespace elpc::workload {
namespace {

TEST(Suite, HasTwentyCases) {
  const auto suite = default_suite();
  ASSERT_EQ(suite.size(), 20u);
  for (const CaseSpec& spec : suite) {
    EXPECT_NO_THROW(spec.validate());
  }
}

TEST(Suite, SizesGrowMonotonically) {
  const auto suite = default_suite();
  for (std::size_t i = 1; i < suite.size(); ++i) {
    EXPECT_GE(suite[i].modules, suite[i - 1].modules);
    EXPECT_GT(suite[i].nodes, suite[i - 1].nodes);
    EXPECT_GT(suite[i].links, suite[i - 1].links);
  }
}

TEST(Suite, FirstCaseMatchesIllustratedScale) {
  const auto suite = default_suite();
  EXPECT_EQ(suite[0].modules, 5u);
  EXPECT_EQ(suite[0].nodes, 6u);
}

TEST(Suite, BuildScenarioHonoursSpec) {
  const auto suite = default_suite();
  const Scenario s = build_scenario(suite[3]);
  EXPECT_EQ(s.pipeline.module_count(), suite[3].modules);
  EXPECT_EQ(s.network.node_count(), suite[3].nodes);
  EXPECT_EQ(s.network.link_count(), suite[3].links);
  EXPECT_NE(s.source, s.destination);
  EXPECT_LT(s.source, s.network.node_count());
  EXPECT_LT(s.destination, s.network.node_count());
}

TEST(Suite, ScenariosAreStronglyConnected) {
  for (const CaseSpec& spec : default_suite()) {
    if (spec.nodes > 60) {
      break;  // keep the test fast; the generator is size-agnostic
    }
    const Scenario s = build_scenario(spec);
    EXPECT_TRUE(graph::is_strongly_connected(s.network)) << spec.name;
  }
}

TEST(Suite, GenerationIsDeterministic) {
  const auto suite = default_suite();
  const Scenario a = build_scenario(suite[2]);
  const Scenario b = build_scenario(suite[2]);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.destination, b.destination);
  EXPECT_DOUBLE_EQ(a.pipeline.module(1).complexity,
                   b.pipeline.module(1).complexity);
  EXPECT_EQ(a.network.link_count(), b.network.link_count());
}

TEST(Suite, DifferentSeedsGiveDifferentScenarios) {
  const auto suite = default_suite();
  SuiteConfig other;
  other.base_seed = 999;
  const Scenario a = build_scenario(suite[2]);
  const Scenario b = build_scenario(suite[2], other);
  EXPECT_NE(a.pipeline.module(1).complexity,
            b.pipeline.module(1).complexity);
}

TEST(Suite, CaseSpecValidationCatchesBadSizes) {
  CaseSpec bad;
  bad.modules = 1;
  bad.nodes = 5;
  bad.links = 10;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.modules = 5;
  bad.links = 3;  // fewer than nodes
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.links = 25;  // > n*(n-1) = 20
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(SmallCase, MatchesPaperStructure) {
  const Scenario s = small_case();
  EXPECT_EQ(s.pipeline.module_count(), 5u);
  EXPECT_EQ(s.network.node_count(), 6u);
  EXPECT_EQ(s.network.link_count(), 28u);
  EXPECT_EQ(s.source, 0u);
  EXPECT_EQ(s.destination, 5u);
  EXPECT_NO_THROW(s.network.validate());
}

TEST(SmallCase, SourceDestinationNotDirectlyLinked) {
  // The direct links are omitted to force mappings through the middle.
  const Scenario s = small_case();
  EXPECT_FALSE(s.network.has_link(0, 5));
  EXPECT_FALSE(s.network.has_link(5, 0));
}

TEST(ScenarioJson, RoundTrip) {
  const Scenario original = small_case();
  const Scenario restored = scenario_from_json(to_json(original));
  EXPECT_EQ(restored.name, original.name);
  EXPECT_EQ(restored.source, original.source);
  EXPECT_EQ(restored.destination, original.destination);
  EXPECT_EQ(restored.pipeline.module_count(),
            original.pipeline.module_count());
  EXPECT_EQ(restored.network.link_count(), original.network.link_count());
}

TEST(ScenarioJson, RejectsOutOfRangeEndpoints) {
  util::Json doc = to_json(small_case());
  doc.set("source", 99);
  EXPECT_THROW((void)scenario_from_json(doc), util::JsonError);
}

}  // namespace
}  // namespace elpc::workload
