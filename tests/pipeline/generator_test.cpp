#include "pipeline/generator.hpp"

#include <gtest/gtest.h>

namespace elpc::pipeline {
namespace {

TEST(PipelineRanges, Validation) {
  PipelineRanges ok;
  EXPECT_NO_THROW(ok.validate());
  PipelineRanges bad = ok;
  bad.min_complexity = -1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.min_data_mb = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.max_data_mb = bad.min_data_mb / 2;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

class RandomPipelineTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomPipelineTest, WellFormedAtEverySize) {
  util::Rng rng(100 + GetParam());
  const PipelineRanges ranges;
  const Pipeline p = random_pipeline(rng, GetParam(), ranges);
  EXPECT_EQ(p.module_count(), GetParam());
  EXPECT_DOUBLE_EQ(p.module(0).complexity, 0.0);
  for (ModuleId j = 0; j < p.module_count(); ++j) {
    EXPECT_GT(p.module(j).output_mb, 0.0);
    EXPECT_GE(p.module(j).output_mb, ranges.min_data_mb);
    EXPECT_LE(p.module(j).output_mb, ranges.max_data_mb);
    if (j > 0) {
      EXPECT_GE(p.module(j).complexity, ranges.min_complexity);
      EXPECT_LE(p.module(j).complexity, ranges.max_complexity);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomPipelineTest,
                         ::testing::Values(2, 3, 5, 10, 50, 100));

TEST(RandomPipeline, Deterministic) {
  util::Rng a(5);
  util::Rng b(5);
  const Pipeline p1 = random_pipeline(a, 8, {});
  const Pipeline p2 = random_pipeline(b, 8, {});
  for (ModuleId j = 0; j < 8; ++j) {
    EXPECT_DOUBLE_EQ(p1.module(j).complexity, p2.module(j).complexity);
    EXPECT_DOUBLE_EQ(p1.module(j).output_mb, p2.module(j).output_mb);
  }
}

TEST(RandomPipeline, NamesFollowConvention) {
  util::Rng rng(6);
  const Pipeline p = random_pipeline(rng, 4, {});
  EXPECT_EQ(p.module(0).name, "source");
  EXPECT_EQ(p.module(1).name, "stage1");
  EXPECT_EQ(p.module(3).name, "sink");
}

TEST(RandomPipeline, RejectsTooFewModules) {
  util::Rng rng(7);
  EXPECT_THROW((void)random_pipeline(rng, 1, {}), std::invalid_argument);
}

}  // namespace
}  // namespace elpc::pipeline
