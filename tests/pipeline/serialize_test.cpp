#include "pipeline/serialize.hpp"

#include <gtest/gtest.h>

#include "pipeline/generator.hpp"
#include "util/rng.hpp"

namespace elpc::pipeline {
namespace {

TEST(PipelineJson, RoundTrip) {
  util::Rng rng(11);
  const Pipeline original = random_pipeline(rng, 7, {});
  const Pipeline restored = pipeline_from_json(to_json(original));
  ASSERT_EQ(restored.module_count(), original.module_count());
  for (ModuleId j = 0; j < original.module_count(); ++j) {
    EXPECT_EQ(restored.module(j).name, original.module(j).name);
    EXPECT_DOUBLE_EQ(restored.module(j).complexity,
                     original.module(j).complexity);
    EXPECT_DOUBLE_EQ(restored.module(j).output_mb,
                     original.module(j).output_mb);
  }
}

TEST(PipelineJson, InvariantsRevalidatedOnLoad) {
  // A document violating the c_0 = 0 invariant must be rejected by the
  // Pipeline constructor during deserialization.
  const util::Json doc = util::Json::parse(
      R"({"modules":[{"name":"s","complexity":1.0,"output_mb":1.0},
                     {"name":"t","complexity":0.1,"output_mb":1.0}]})");
  EXPECT_THROW((void)pipeline_from_json(doc), std::invalid_argument);
}

TEST(PipelineJson, MalformedDocumentThrows) {
  EXPECT_THROW((void)pipeline_from_json(util::Json::parse("{}")),
               util::JsonError);
  EXPECT_THROW((void)pipeline_from_json(util::Json::parse(
                   R"({"modules":[{"name":"s"}]})")),
               util::JsonError);
}

}  // namespace
}  // namespace elpc::pipeline
