#include "pipeline/pipeline.hpp"

#include <gtest/gtest.h>

namespace elpc::pipeline {
namespace {

Pipeline three_stage() {
  return Pipeline({{"src", 0.0, 10.0}, {"mid", 0.5, 4.0}, {"sink", 0.2, 1.0}});
}

TEST(Pipeline, BasicAccessors) {
  const Pipeline p = three_stage();
  EXPECT_EQ(p.module_count(), 3u);
  EXPECT_EQ(p.module(0).name, "src");
  EXPECT_DOUBLE_EQ(p.module(1).complexity, 0.5);
  EXPECT_DOUBLE_EQ(p.module(2).output_mb, 1.0);
}

TEST(Pipeline, InputIsPredecessorOutput) {
  const Pipeline p = three_stage();
  EXPECT_DOUBLE_EQ(p.input_mb(1), 10.0);
  EXPECT_DOUBLE_EQ(p.input_mb(2), 4.0);
}

TEST(Pipeline, SourceHasNoInput) {
  const Pipeline p = three_stage();
  EXPECT_THROW((void)p.input_mb(0), std::invalid_argument);
}

TEST(Pipeline, WorkUnits) {
  const Pipeline p = three_stage();
  EXPECT_DOUBLE_EQ(p.work_units(0), 0.0);
  EXPECT_DOUBLE_EQ(p.work_units(1), 0.5 * 10.0);
  EXPECT_DOUBLE_EQ(p.work_units(2), 0.2 * 4.0);
  EXPECT_DOUBLE_EQ(p.total_work_units(), 5.0 + 0.8);
}

TEST(Pipeline, RejectsTooFewModules) {
  EXPECT_THROW(Pipeline({{"only", 0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(Pipeline(std::vector<ModuleSpec>{}), std::invalid_argument);
}

TEST(Pipeline, RejectsComputingSource) {
  EXPECT_THROW(Pipeline({{"src", 0.1, 1.0}, {"sink", 0.1, 1.0}}),
               std::invalid_argument);
}

TEST(Pipeline, RejectsNegativeComplexity) {
  EXPECT_THROW(Pipeline({{"src", 0.0, 1.0}, {"sink", -0.1, 1.0}}),
               std::invalid_argument);
}

TEST(Pipeline, RejectsNonPositiveDataSizes) {
  EXPECT_THROW(Pipeline({{"src", 0.0, 0.0}, {"sink", 0.1, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(Pipeline({{"src", 0.0, 1.0}, {"sink", 0.1, -2.0}}),
               std::invalid_argument);
}

TEST(Pipeline, DefaultNamesAssigned) {
  const Pipeline p({{"", 0.0, 1.0}, {"", 0.1, 1.0}});
  EXPECT_EQ(p.module(0).name, "M0");
  EXPECT_EQ(p.module(1).name, "M1");
}

TEST(Pipeline, OutOfRangeModuleThrows) {
  const Pipeline p = three_stage();
  EXPECT_THROW((void)p.module(3), std::out_of_range);
  EXPECT_THROW((void)p.input_mb(3), std::out_of_range);
}

TEST(Pipeline, ToStringMentionsAllStages) {
  const std::string s = three_stage().to_string();
  EXPECT_NE(s.find("src"), std::string::npos);
  EXPECT_NE(s.find("mid"), std::string::npos);
  EXPECT_NE(s.find("sink"), std::string::npos);
  EXPECT_NE(s.find(" -> "), std::string::npos);
}

TEST(Pipeline, TwoModuleClientServerDegenerateCase) {
  // "a computing pipeline with only two end modules reduces to a
  // traditional client/server based computing paradigm"
  const Pipeline p({{"client", 0.0, 5.0}, {"server", 0.3, 1.0}});
  EXPECT_EQ(p.module_count(), 2u);
  EXPECT_DOUBLE_EQ(p.work_units(1), 1.5);
}

}  // namespace
}  // namespace elpc::pipeline
