#include "pipeline/cost_model.hpp"

#include <gtest/gtest.h>

namespace elpc::pipeline {
namespace {

struct Fixture {
  Pipeline pipeline{{{"src", 0.0, 16.0}, {"mid", 0.5, 8.0},
                     {"sink", 0.25, 1.0}}};
  graph::Network network;

  Fixture() {
    network.add_node({"a", 2.0});
    network.add_node({"b", 8.0});
    network.add_link(0, 1, {100.0, 0.010});
    network.add_link(1, 0, {400.0, 0.002});
  }
};

TEST(CostModel, ComputingTimeFollowsEquation) {
  // T_computing(M_i, v_j) = m_{i-1} * c_i / p_j
  Fixture f;
  const CostModel model(f.pipeline, f.network);
  EXPECT_DOUBLE_EQ(model.computing_time(1, 0), 16.0 * 0.5 / 2.0);
  EXPECT_DOUBLE_EQ(model.computing_time(1, 1), 16.0 * 0.5 / 8.0);
  EXPECT_DOUBLE_EQ(model.computing_time(2, 0), 8.0 * 0.25 / 2.0);
}

TEST(CostModel, SourceModuleComputesNothing) {
  Fixture f;
  const CostModel model(f.pipeline, f.network);
  EXPECT_DOUBLE_EQ(model.computing_time(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.computing_time(0, 1), 0.0);
}

TEST(CostModel, TransportTimeIncludesMld) {
  // T_transport(m, L) = m / b + d  (default options)
  Fixture f;
  const CostModel model(f.pipeline, f.network);
  EXPECT_DOUBLE_EQ(model.transport_time(20.0, 0, 1), 20.0 / 100.0 + 0.010);
  EXPECT_DOUBLE_EQ(model.transport_time(20.0, 1, 0), 20.0 / 400.0 + 0.002);
}

TEST(CostModel, TransportTimeWithoutMld) {
  Fixture f;
  const CostModel model(f.pipeline, f.network,
                        CostOptions{.include_link_delay = false});
  EXPECT_DOUBLE_EQ(model.transport_time(20.0, 0, 1), 0.2);
}

TEST(CostModel, TransportByAttributeMatchesLookup) {
  Fixture f;
  const CostModel model(f.pipeline, f.network);
  EXPECT_DOUBLE_EQ(model.transport_time(10.0, f.network.link(0, 1)),
                   model.transport_time(10.0, 0, 1));
}

TEST(CostModel, InputTransportUsesPredecessorOutput) {
  Fixture f;
  const CostModel model(f.pipeline, f.network);
  // Module 1 receives m_0 = 16 Mb.
  EXPECT_DOUBLE_EQ(model.input_transport_time(1, 0, 1), 16.0 / 100.0 + 0.010);
  // Module 2 receives m_1 = 8 Mb.
  EXPECT_DOUBLE_EQ(model.input_transport_time(2, 1, 0), 8.0 / 400.0 + 0.002);
}

TEST(CostModel, MissingLinkThrows) {
  Fixture f;
  graph::Network isolated;
  isolated.add_node({});
  isolated.add_node({});
  const CostModel model(f.pipeline, isolated);
  EXPECT_THROW((void)model.transport_time(1.0, 0, 1), std::out_of_range);
}

TEST(CostModel, FasterNodeIsAlwaysCheaper) {
  Fixture f;
  const CostModel model(f.pipeline, f.network);
  for (ModuleId j = 1; j < f.pipeline.module_count(); ++j) {
    EXPECT_LT(model.computing_time(j, 1), model.computing_time(j, 0))
        << "node 1 has 4x the power of node 0";
  }
}

}  // namespace
}  // namespace elpc::pipeline
