#include "baselines/streamline.hpp"

#include <gtest/gtest.h>

#include "core/elpc.hpp"
#include "graph/generators.hpp"
#include "mapping/evaluator.hpp"
#include "pipeline/generator.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace elpc::baselines {
namespace {

using mapping::MapResult;
using mapping::Problem;

workload::Scenario random_instance(std::uint64_t seed, std::size_t modules,
                                   std::size_t nodes, std::size_t links) {
  util::Rng rng(seed);
  workload::Scenario s;
  s.pipeline = pipeline::random_pipeline(rng, modules, {});
  s.network = graph::random_connected_network(rng, nodes, links, {});
  s.source = 0;
  s.destination = nodes - 1;
  return s;
}

TEST(Streamline, DelayResultPassesEvaluator) {
  const workload::Scenario s = random_instance(1, 6, 10, 70);
  const Problem p = s.problem();
  const MapResult r = StreamlineMapper().min_delay(p);
  if (r.feasible) {
    const mapping::Evaluation e = mapping::evaluate_total_delay(p, r.mapping);
    ASSERT_TRUE(e.feasible);
    EXPECT_NEAR(e.seconds, r.seconds, 1e-12 + 1e-9 * e.seconds);
  }
}

TEST(Streamline, DelayNeverBeatsElpc) {
  for (std::uint64_t seed = 10; seed < 40; ++seed) {
    const workload::Scenario s = random_instance(seed, 6, 10, 60);
    const Problem p = s.problem();
    const MapResult streamline = StreamlineMapper().min_delay(p);
    const MapResult elpc = core::ElpcMapper().min_delay(p);
    ASSERT_TRUE(elpc.feasible);
    if (streamline.feasible) {
      EXPECT_GE(streamline.seconds, elpc.seconds * (1.0 - 1e-9))
          << "seed " << seed;
    }
  }
}

TEST(Streamline, EndpointsPinned) {
  const workload::Scenario s = random_instance(2, 6, 9, 55);
  const MapResult r = StreamlineMapper().min_delay(s.problem());
  if (r.feasible) {
    EXPECT_EQ(r.mapping.node_of(0), s.source);
    EXPECT_EQ(r.mapping.node_of(5), s.destination);
  }
}

TEST(Streamline, FrameRateResultIsOneToOne) {
  const workload::Scenario s = random_instance(3, 5, 12, 100);
  const Problem p = s.problem({.include_link_delay = false});
  const MapResult r = StreamlineMapper().max_frame_rate(p);
  if (r.feasible) {
    EXPECT_TRUE(r.mapping.is_one_to_one());
    const mapping::Evaluation e =
        mapping::evaluate_bottleneck(p, r.mapping, true);
    ASSERT_TRUE(e.feasible);
    EXPECT_NEAR(e.seconds, r.seconds, 1e-12 + 1e-9 * e.seconds);
  }
}

TEST(Streamline, FrameRateInfeasibleWhenPipelineTooLong) {
  const workload::Scenario s = random_instance(4, 9, 6, 25);
  EXPECT_FALSE(StreamlineMapper()
                   .max_frame_rate(s.problem({.include_link_delay = false}))
                   .feasible);
}

TEST(Streamline, MostlyFeasibleOnDenseNetworks) {
  // The adapted heuristic has no feasibility guarantee on sparse graphs
  // (the original assumed a full mesh); on dense ones it should almost
  // always produce a valid placement.
  std::size_t feasible = 0;
  const std::size_t trials = 30;
  for (std::uint64_t seed = 50; seed < 50 + trials; ++seed) {
    const workload::Scenario s = random_instance(seed, 6, 12, 110);
    if (StreamlineMapper().min_delay(s.problem()).feasible) {
      ++feasible;
    }
  }
  EXPECT_GE(feasible, trials * 8 / 10);
}

TEST(Streamline, CanFailOnSparseWansGracefully) {
  // A hub-and-spoke WAN where co-locating stages on a fast node strands
  // the placement (the behaviour observed in the remote-visualization
  // example).  Whatever happens, the result must be explicit, not a
  // silently wrong mapping.
  workload::Scenario s;
  util::Rng rng(6);
  s.pipeline = pipeline::random_pipeline(rng, 5, {});
  s.network.add_node({"a", 1.0});
  s.network.add_node({"fast", 50.0});
  s.network.add_node({"b", 1.0});
  s.network.add_node({"dst", 1.0});
  s.network.add_duplex_link(0, 1, {1000.0, 0.001});
  s.network.add_duplex_link(0, 2, {100.0, 0.001});
  s.network.add_duplex_link(2, 3, {100.0, 0.001});
  s.source = 0;
  s.destination = 3;
  const MapResult r = StreamlineMapper().min_delay(s.problem());
  if (!r.feasible) {
    EXPECT_FALSE(r.reason.empty());
  } else {
    EXPECT_TRUE(
        mapping::evaluate_total_delay(s.problem(), r.mapping).feasible);
  }
}

TEST(Streamline, CommWeightZeroRanksByComputeOnly) {
  // With comm_weight = 0 the ranking ignores data volumes; both variants
  // must still return evaluator-consistent results.
  const workload::Scenario s = random_instance(7, 7, 11, 80);
  const Problem p = s.problem();
  const StreamlineMapper comp_only(StreamlineOptions{.comm_weight = 0.0});
  const MapResult r = comp_only.min_delay(p);
  if (r.feasible) {
    EXPECT_TRUE(mapping::evaluate_total_delay(p, r.mapping).feasible);
  }
}

TEST(Streamline, PenaltyDiscouragesMissingLinks) {
  // With a huge penalty, placements over missing links should be rare on
  // this mesh; with zero penalty the heuristic is blind to topology.
  const workload::Scenario s = random_instance(8, 6, 10, 45);
  const StreamlineMapper strong(
      StreamlineOptions{.missing_link_penalty = 1e6});
  const StreamlineMapper blind(StreamlineOptions{.missing_link_penalty = 0.0});
  const MapResult a = strong.min_delay(s.problem());
  const MapResult b = blind.min_delay(s.problem());
  // The penalized variant must be at least as often feasible.
  if (b.feasible) {
    EXPECT_TRUE(a.feasible);
  }
}

}  // namespace
}  // namespace elpc::baselines
