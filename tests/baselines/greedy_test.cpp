#include "baselines/greedy.hpp"

#include <gtest/gtest.h>

#include "core/elpc.hpp"
#include "graph/generators.hpp"
#include "mapping/evaluator.hpp"
#include "pipeline/generator.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace elpc::baselines {
namespace {

using mapping::MapResult;
using mapping::Problem;

workload::Scenario random_instance(std::uint64_t seed, std::size_t modules,
                                   std::size_t nodes, std::size_t links) {
  util::Rng rng(seed);
  workload::Scenario s;
  s.pipeline = pipeline::random_pipeline(rng, modules, {});
  s.network = graph::random_connected_network(rng, nodes, links, {});
  s.source = 0;
  s.destination = nodes - 1;
  return s;
}

TEST(Greedy, DelayResultPassesEvaluator) {
  const workload::Scenario s = random_instance(1, 6, 10, 60);
  const Problem p = s.problem();
  const MapResult r = GreedyMapper().min_delay(p);
  ASSERT_TRUE(r.feasible);
  const mapping::Evaluation e = mapping::evaluate_total_delay(p, r.mapping);
  ASSERT_TRUE(e.feasible);
  EXPECT_NEAR(e.seconds, r.seconds, 1e-12 + 1e-9 * e.seconds);
}

TEST(Greedy, DelayNeverBeatsElpc) {
  // ELPC's delay DP is optimal, so Greedy can match but never win.
  for (std::uint64_t seed = 10; seed < 40; ++seed) {
    const workload::Scenario s = random_instance(seed, 6, 10, 55);
    const Problem p = s.problem();
    const MapResult greedy = GreedyMapper().min_delay(p);
    const MapResult elpc = core::ElpcMapper().min_delay(p);
    ASSERT_TRUE(elpc.feasible);
    if (greedy.feasible) {
      EXPECT_GE(greedy.seconds, elpc.seconds * (1.0 - 1e-9))
          << "seed " << seed;
    }
  }
}

TEST(Greedy, EndpointsPinned) {
  const workload::Scenario s = random_instance(2, 5, 9, 45);
  const MapResult r = GreedyMapper().min_delay(s.problem());
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.mapping.node_of(0), s.source);
  EXPECT_EQ(r.mapping.node_of(4), s.destination);
}

TEST(Greedy, ReachabilityGuardPreventsDeadEnds) {
  // A trap topology: a tempting fast node with no route onward.  The
  // guard must route around it.
  workload::Scenario s;
  s.pipeline = pipeline::Pipeline(
      {{"src", 0.0, 10.0}, {"a", 0.5, 10.0}, {"sink", 0.5, 1.0}});
  s.network.add_node({"src", 1.0});    // 0
  s.network.add_node({"trap", 100.0});  // 1: fast but dead-end
  s.network.add_node({"slow", 1.0});   // 2
  s.network.add_node({"dst", 1.0});    // 3
  s.network.add_link(0, 1, {1000.0, 0.0});  // into the trap
  s.network.add_link(0, 2, {100.0, 0.0});
  s.network.add_link(2, 3, {100.0, 0.0});
  s.source = 0;
  s.destination = 3;
  const MapResult r = GreedyMapper().min_delay(s.problem());
  ASSERT_TRUE(r.feasible);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NE(r.mapping.node_of(j), 1u) << "walked into the trap";
  }
}

TEST(Greedy, FrameRateResultIsOneToOne) {
  const workload::Scenario s = random_instance(3, 5, 10, 70);
  const Problem p = s.problem({.include_link_delay = false});
  const MapResult r = GreedyMapper().max_frame_rate(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.mapping.is_one_to_one());
  const mapping::Evaluation e =
      mapping::evaluate_bottleneck(p, r.mapping, true);
  ASSERT_TRUE(e.feasible);
  EXPECT_NEAR(e.seconds, r.seconds, 1e-12 + 1e-9 * e.seconds);
}

TEST(Greedy, FrameRateInfeasibleWhenPipelineTooLong) {
  const workload::Scenario s = random_instance(4, 9, 6, 25);
  EXPECT_FALSE(GreedyMapper()
                   .max_frame_rate(s.problem({.include_link_delay = false}))
                   .feasible);
}

TEST(Greedy, FrameRateSourceEqualsDestinationInfeasible) {
  workload::Scenario s = random_instance(5, 4, 8, 40);
  s.destination = s.source;
  EXPECT_FALSE(GreedyMapper().max_frame_rate(s.problem()).feasible);
}

TEST(Greedy, MyopiaCanLoseToElpcOnDelay) {
  // Construct the classic greedy trap: a cheap first hop leading into an
  // expensive region.  Greedy takes the bait; ELPC does not.
  workload::Scenario s;
  s.pipeline = pipeline::Pipeline(
      {{"src", 0.0, 20.0}, {"a", 0.1, 20.0}, {"sink", 0.1, 1.0}});
  s.network.add_node({"src", 1.0});    // 0
  s.network.add_node({"bait", 10.0});  // 1: great compute, awful egress
  s.network.add_node({"solid", 8.0});  // 2
  s.network.add_node({"dst", 5.0});    // 3
  s.network.add_link(0, 1, {2000.0, 0.0001});  // tempting
  s.network.add_link(1, 3, {10.0, 0.005});     // awful egress
  s.network.add_link(0, 2, {500.0, 0.001});
  s.network.add_link(2, 3, {500.0, 0.001});
  s.source = 0;
  s.destination = 3;
  const Problem p = s.problem();
  const MapResult greedy = GreedyMapper().min_delay(p);
  const MapResult elpc = core::ElpcMapper().min_delay(p);
  ASSERT_TRUE(greedy.feasible);
  ASSERT_TRUE(elpc.feasible);
  EXPECT_GT(greedy.seconds, elpc.seconds * 1.5)
      << "greedy should fall for the bait node";
  EXPECT_EQ(greedy.mapping.node_of(1), 1u);
  EXPECT_NE(elpc.mapping.node_of(1), 1u);
}

}  // namespace
}  // namespace elpc::baselines
