#include "mapping/evaluator.hpp"

#include <gtest/gtest.h>

namespace elpc::mapping {
namespace {

/// 3-node line with fully specified costs so every expected value can be
/// computed by hand:
///   nodes: p = {2, 4, 5}; links 0->1 (100 Mbps, 10 ms), 1->2 (200, 5 ms)
///   pipeline: src (out 10 Mb), mid (c=0.4, out 6), sink (c=0.5, out 1)
struct Fixture {
  pipeline::Pipeline pipeline{
      {{"src", 0.0, 10.0}, {"mid", 0.4, 6.0}, {"sink", 0.5, 1.0}}};
  graph::Network network;

  Fixture() {
    network.add_node({"n0", 2.0});
    network.add_node({"n1", 4.0});
    network.add_node({"n2", 5.0});
    network.add_link(0, 1, {100.0, 0.010});
    network.add_link(1, 2, {200.0, 0.005});
  }

  [[nodiscard]] Problem problem(pipeline::CostOptions cost = {}) const {
    return Problem(pipeline, network, 0, 2, cost);
  }
};

TEST(CheckStructure, AcceptsWellFormedMapping) {
  Fixture f;
  const Evaluation e = check_structure(f.problem(), Mapping({0, 1, 2}));
  EXPECT_TRUE(e.feasible);
}

TEST(CheckStructure, RejectsSizeMismatch) {
  Fixture f;
  EXPECT_FALSE(check_structure(f.problem(), Mapping({0, 2})).feasible);
}

TEST(CheckStructure, RejectsWrongEndpoints) {
  Fixture f;
  const Evaluation e1 = check_structure(f.problem(), Mapping({1, 1, 2}));
  EXPECT_FALSE(e1.feasible);
  EXPECT_NE(e1.reason.find("source"), std::string::npos);
  const Evaluation e2 = check_structure(f.problem(), Mapping({0, 1, 1}));
  EXPECT_FALSE(e2.feasible);
  EXPECT_NE(e2.reason.find("destination"), std::string::npos);
}

TEST(CheckStructure, RejectsMissingLink) {
  Fixture f;
  // 0 -> 2 has no direct link.
  const Evaluation e = check_structure(f.problem(), Mapping({0, 0, 2}));
  EXPECT_TRUE(check_structure(f.problem(), Mapping({0, 1, 2})).feasible);
  // Mapping module 1 on node 0, module 2 on node 2 requires link 0->2.
  const Evaluation bad = check_structure(f.problem(), Mapping({0, 0, 2}));
  EXPECT_FALSE(bad.feasible);
  EXPECT_NE(bad.reason.find("no link"), std::string::npos);
  (void)e;
}

TEST(CheckStructure, RejectsOutOfRangeNode) {
  Fixture f;
  EXPECT_FALSE(check_structure(f.problem(), Mapping({0, 9, 2})).feasible);
}

TEST(TotalDelay, HandComputedValue) {
  Fixture f;
  // Eq. 1 on mapping (0, 1, 2):
  //   transport 10 Mb over 0->1: 10/100 + 0.010        = 0.110
  //   compute mid on n1: 10 * 0.4 / 4                  = 1.000
  //   transport 6 Mb over 1->2: 6/200 + 0.005          = 0.035
  //   compute sink on n2: 6 * 0.5 / 5                  = 0.600
  const Evaluation e = evaluate_total_delay(f.problem(), Mapping({0, 1, 2}));
  ASSERT_TRUE(e.feasible);
  EXPECT_NEAR(e.seconds, 0.110 + 1.000 + 0.035 + 0.600, 1e-12);
}

TEST(TotalDelay, MldExcludedWhenConfigured) {
  Fixture f;
  const Evaluation e = evaluate_total_delay(
      f.problem({.include_link_delay = false}), Mapping({0, 1, 2}));
  ASSERT_TRUE(e.feasible);
  EXPECT_NEAR(e.seconds, 0.100 + 1.000 + 0.030 + 0.600, 1e-12);
}

TEST(TotalDelay, GroupingSkipsTransport) {
  Fixture f;
  // mid co-located with src on n0: no 0->1 transport for it, but mid is
  // slower on n0 (p=2).
  const Evaluation e = evaluate_total_delay(f.problem(), Mapping({0, 0, 2}));
  EXPECT_FALSE(e.feasible);  // 0->2 missing; use a reachable variant:
  const Evaluation e2 =
      evaluate_total_delay(f.problem(), Mapping({0, 1, 2}));
  const Evaluation e3 = evaluate_total_delay(
      Problem(f.pipeline, f.network, 0, 2), Mapping({0, 1, 2}));
  EXPECT_DOUBLE_EQ(e2.seconds, e3.seconds);
}

TEST(TotalDelay, InfeasibleMappingReportsReason) {
  Fixture f;
  const Evaluation e = evaluate_total_delay(f.problem(), Mapping({0, 0, 2}));
  EXPECT_FALSE(e.feasible);
  EXPECT_FALSE(e.reason.empty());
}

TEST(Bottleneck, HandComputedValue) {
  Fixture f;
  // Eq. 2 terms on mapping (0, 1, 2) without MLD:
  //   transport 0->1: 0.100 ; compute mid: 1.000 ;
  //   transport 1->2: 0.030 ; compute sink: 0.600
  const Evaluation e = evaluate_bottleneck(
      f.problem({.include_link_delay = false}), Mapping({0, 1, 2}));
  ASSERT_TRUE(e.feasible);
  EXPECT_DOUBLE_EQ(e.seconds, 1.000);
  EXPECT_NEAR(e.frame_rate(), 1.0, 1e-12);
}

TEST(Bottleneck, NoReuseEnforcedWhenRequested) {
  Fixture f;
  // Add the 0 -> 2 link so the mapping is structurally sound and the
  // *reuse* check is what rejects it.
  f.network.add_link(0, 2, {1000.0, 0.001});
  const Mapping shared({0, 0, 2});
  const Evaluation strict =
      evaluate_bottleneck(f.problem(), shared, /*enforce_no_reuse=*/true);
  EXPECT_FALSE(strict.feasible);
  EXPECT_NE(strict.reason.find("reuse"), std::string::npos);
}

TEST(Bottleneck, SharedNodeLoadSumsWithoutEnforcement) {
  // With reuse allowed, a node hosting two modules serves each frame for
  // the SUM of their computing times.
  Fixture f;
  f.network.add_link(0, 2, {1000.0, 0.001});
  const Mapping shared({0, 0, 2});
  const Evaluation e = evaluate_bottleneck(
      f.problem({.include_link_delay = false}), shared,
      /*enforce_no_reuse=*/false);
  ASSERT_TRUE(e.feasible);
  // Node 0 load: mid = 10*0.4/2 = 2.0 (src computes nothing).
  // Transport 0->2: 6/1000 = 0.006; sink on n2: 0.6.
  EXPECT_DOUBLE_EQ(e.seconds, 2.0);
}

TEST(Bottleneck, FrameRateIsReciprocal) {
  Evaluation e;
  e.feasible = true;
  e.seconds = 0.04;
  EXPECT_DOUBLE_EQ(e.frame_rate(), 25.0);
  e.seconds = 0.0;
  EXPECT_DOUBLE_EQ(e.frame_rate(), 0.0);
}

TEST(Problem, ValidateCatchesBadInstances) {
  Fixture f;
  Problem p = f.problem();
  EXPECT_NO_THROW(p.validate());
  p.source = 99;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = f.problem();
  p.destination = 99;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Problem();
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace elpc::mapping
