#include "mapping/mapping.hpp"

#include <gtest/gtest.h>

namespace elpc::mapping {
namespace {

TEST(Mapping, BasicAccessors) {
  const Mapping m({0, 0, 4, 4, 5});
  EXPECT_EQ(m.module_count(), 5u);
  EXPECT_EQ(m.node_of(0), 0u);
  EXPECT_EQ(m.node_of(4), 5u);
  EXPECT_THROW((void)m.node_of(5), std::out_of_range);
}

TEST(Mapping, RejectsEmptyAssignment) {
  EXPECT_THROW(Mapping(std::vector<graph::NodeId>{}), std::invalid_argument);
}

TEST(Mapping, GroupsAreMaximalRuns) {
  // The paper's Fig. 3 shape: {M0,M1} on node 0, {M2,M3} on node 4,
  // {M4} on node 5.
  const Mapping m({0, 0, 4, 4, 5});
  const std::vector<Group> groups = m.groups();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (Group{0, 1, 0}));
  EXPECT_EQ(groups[1], (Group{2, 3, 4}));
  EXPECT_EQ(groups[2], (Group{4, 4, 5}));
}

TEST(Mapping, SingleGroupWhenAllColocated) {
  const Mapping m({3, 3, 3});
  ASSERT_EQ(m.groups().size(), 1u);
  EXPECT_EQ(m.groups()[0], (Group{0, 2, 3}));
}

TEST(Mapping, GroupPathIsOneNodePerGroup) {
  const Mapping m({0, 0, 4, 4, 5});
  EXPECT_EQ(m.group_path().nodes(), (std::vector<graph::NodeId>{0, 4, 5}));
}

TEST(Mapping, NonContiguousReuseCreatesLoopedPath) {
  // "two or more modules, either contiguous or non-contiguous (the
  // selected path P contains a loop) ... are allowed to run on the same
  // node" — delay-problem semantics.
  const Mapping m({0, 1, 0, 2});
  EXPECT_EQ(m.groups().size(), 4u);
  EXPECT_FALSE(m.group_path().is_simple());
  EXPECT_FALSE(m.has_no_group_reuse());
}

TEST(Mapping, OneToOneDetection) {
  EXPECT_TRUE(Mapping({0, 1, 2}).is_one_to_one());
  EXPECT_FALSE(Mapping({0, 1, 1}).is_one_to_one());
  EXPECT_FALSE(Mapping({0, 1, 0}).is_one_to_one());
}

TEST(Mapping, GroupReuseVsOneToOne) {
  // Contiguous sharing violates one-to-one but not group-level reuse.
  const Mapping m({0, 0, 1});
  EXPECT_FALSE(m.is_one_to_one());
  EXPECT_TRUE(m.has_no_group_reuse());
}

TEST(Mapping, ToStringShowsGroups) {
  const Mapping m({0, 0, 4});
  EXPECT_EQ(m.to_string(), "M0,M1 -> node0 | M2 -> node4");
}

TEST(Mapping, Equality) {
  EXPECT_EQ(Mapping({1, 2}), Mapping({1, 2}));
  EXPECT_FALSE(Mapping({1, 2}) == Mapping({2, 1}));
}

}  // namespace
}  // namespace elpc::mapping
