// Cross-module integration tests: the full flows a user of the library
// would run, stitched together exactly as the examples and benches do.

#include <gtest/gtest.h>

#include "baselines/greedy.hpp"
#include "baselines/streamline.hpp"
#include "core/elpc.hpp"
#include "core/elpc_grouped.hpp"
#include "experiments/registry.hpp"
#include "experiments/report.hpp"
#include "experiments/runner.hpp"
#include "mapping/evaluator.hpp"
#include "netmeasure/netmeasure.hpp"
#include "sim/simulator.hpp"
#include "workload/small_case.hpp"
#include "workload/suite.hpp"

namespace elpc {
namespace {

TEST(EndToEnd, MapThenSimulateInteractive) {
  // Scenario -> ELPC min-delay -> discrete-event execution -> the
  // simulated latency confirms the analytic objective.
  const workload::Scenario s = workload::small_case();
  const mapping::Problem p = s.problem();
  const mapping::MapResult r = core::ElpcMapper().min_delay(p);
  ASSERT_TRUE(r.feasible);
  const sim::SimReport report =
      sim::simulate(p, r.mapping, sim::SimConfig{.frames = 1});
  EXPECT_NEAR(report.first_frame_latency_s(), r.seconds, 1e-12);
}

TEST(EndToEnd, MapThenSimulateStreaming) {
  const workload::Scenario s = workload::small_case();
  const mapping::Problem p = s.problem({.include_link_delay = false});
  const mapping::MapResult r = core::ElpcMapper().max_frame_rate(p);
  ASSERT_TRUE(r.feasible);
  const sim::SimReport report =
      sim::simulate(p, r.mapping, sim::SimConfig{.frames = 300});
  EXPECT_NEAR(report.throughput_fps, r.frame_rate(),
              0.01 * r.frame_rate());
}

TEST(EndToEnd, MeasurementDrivenMappingStaysNearOracle) {
  // netmeasure -> annotated graph -> ELPC -> re-score on ground truth.
  const workload::Scenario truth = workload::small_case();
  util::Rng rng(1);
  netmeasure::ProbePlan plan;
  plan.probes = 50;
  plan.relative_noise = 0.02;
  const graph::Network measured =
      netmeasure::measure_network(rng, truth.network, plan);

  const mapping::Problem exact = truth.problem();
  const mapping::Problem estimated(truth.pipeline, measured, truth.source,
                                   truth.destination);
  const mapping::MapResult oracle = core::ElpcMapper().min_delay(exact);
  const mapping::MapResult planned = core::ElpcMapper().min_delay(estimated);
  ASSERT_TRUE(oracle.feasible);
  ASSERT_TRUE(planned.feasible);
  const mapping::Evaluation actual =
      mapping::evaluate_total_delay(exact, planned.mapping);
  ASSERT_TRUE(actual.feasible);
  EXPECT_LE(actual.seconds, oracle.seconds * 1.10)
      << "2% probe noise should cost at most a few percent of delay";
}

TEST(EndToEnd, ScenarioSurvivesJsonPersistence) {
  // Persist a generated scenario, reload it, and confirm every algorithm
  // produces identical objective values on the reloaded copy.
  const workload::Scenario original =
      workload::build_scenario(workload::default_suite()[1]);
  const workload::Scenario reloaded =
      workload::scenario_from_json(workload::to_json(original));
  for (const std::string& name : {std::string("ELPC"), std::string("Greedy"),
                                  std::string("Streamline")}) {
    const mapping::MapperPtr mapper = experiments::make_mapper(name);
    const mapping::MapResult a = mapper->min_delay(original.problem());
    const mapping::MapResult b = mapper->min_delay(reloaded.problem());
    ASSERT_EQ(a.feasible, b.feasible) << name;
    if (a.feasible) {
      EXPECT_NEAR(a.seconds, b.seconds, 1e-12) << name;
    }
  }
}

TEST(EndToEnd, AllMappersSatisfyTheConformanceContract) {
  // Every registered mapper, on a batch of generated scenarios, must
  // return evaluator-consistent, endpoint-pinned results (the Mapper
  // interface contract).
  auto specs = workload::default_suite();
  specs.resize(5);
  for (const auto& spec : specs) {
    const workload::Scenario s = workload::build_scenario(spec);
    for (const std::string& name : experiments::registered_names()) {
      if (name == "Exhaustive" && spec.nodes > 12) {
        continue;  // refuses large instances by design
      }
      const mapping::MapperPtr mapper = experiments::make_mapper(name);
      const mapping::Problem dp = s.problem();
      const mapping::MapResult delay = mapper->min_delay(dp);
      if (delay.feasible) {
        const auto eval = mapping::evaluate_total_delay(dp, delay.mapping);
        ASSERT_TRUE(eval.feasible) << name << " on " << spec.name;
        EXPECT_NEAR(eval.seconds, delay.seconds,
                    1e-12 + 1e-9 * eval.seconds)
            << name << " on " << spec.name;
      }
      const mapping::Problem fp = s.problem({.include_link_delay = false});
      const mapping::MapResult rate = mapper->max_frame_rate(fp);
      if (rate.feasible) {
        const bool strict = name != "ELPC-grouped";
        const auto eval =
            mapping::evaluate_bottleneck(fp, rate.mapping, strict);
        ASSERT_TRUE(eval.feasible) << name << " on " << spec.name;
        EXPECT_NEAR(eval.seconds, rate.seconds,
                    1e-12 + 1e-9 * eval.seconds)
            << name << " on " << spec.name;
      }
    }
  }
}

TEST(EndToEnd, SuiteShapeChecksHoldOnAPrefix) {
  // The full-suite shape checks run in the fig2 bench; here a 6-case
  // prefix keeps CI fast while still exercising the whole machinery.
  auto specs = workload::default_suite();
  specs.resize(6);
  util::ThreadPool pool(2);
  const auto outcomes = experiments::run_suite(
      specs, workload::SuiteConfig{}, experiments::RunnerOptions{}, pool);
  const auto& elpc_vs_rest = experiments::shape_checks(outcomes);
  // Check #1 (delay optimality) must hold on any subset.
  ASSERT_FALSE(elpc_vs_rest.empty());
  EXPECT_TRUE(elpc_vs_rest[0].pass) << elpc_vs_rest[0].description;
}

TEST(EndToEnd, GroupedExtensionCoversLongPipelines) {
  // The future-work extension handles what the strict problem cannot:
  // map a 10-stage pipeline across 6 nodes and actually stream it.
  util::Rng rng(9);
  workload::Scenario s;
  s.pipeline = pipeline::random_pipeline(rng, 10, {});
  s.network = graph::random_connected_network(rng, 6, 26, {});
  s.source = 0;
  s.destination = 5;
  const mapping::Problem p = s.problem({.include_link_delay = false});
  ASSERT_FALSE(core::ElpcMapper().max_frame_rate(p).feasible);
  const mapping::MapResult r = core::ElpcGroupedMapper().max_frame_rate(p);
  ASSERT_TRUE(r.feasible);
  const sim::SimReport report =
      sim::simulate(p, r.mapping, sim::SimConfig{.frames = 200});
  EXPECT_NEAR(report.throughput_fps, r.frame_rate(),
              0.02 * r.frame_rate());
}

}  // namespace
}  // namespace elpc
