#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "core/elpc.hpp"
#include "graph/generators.hpp"
#include "mapping/evaluator.hpp"
#include "pipeline/generator.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/small_case.hpp"

namespace elpc::sim {
namespace {

using mapping::Mapping;
using mapping::Problem;

workload::Scenario random_instance(std::uint64_t seed, std::size_t modules,
                                   std::size_t nodes, std::size_t links) {
  util::Rng rng(seed);
  workload::Scenario s;
  s.pipeline = pipeline::random_pipeline(rng, modules, {});
  s.network = graph::random_connected_network(rng, nodes, links, {});
  s.source = 0;
  s.destination = nodes - 1;
  return s;
}

TEST(Simulator, SingleFrameLatencyEqualsEq1Exactly) {
  // The core validation: one dataset through the pipeline costs exactly
  // the analytic total delay (including MLD terms).
  for (std::uint64_t seed = 1; seed < 15; ++seed) {
    const workload::Scenario s = random_instance(seed, 6, 9, 50);
    const Problem p = s.problem({.include_link_delay = true});
    const auto best = core::ElpcMapper().min_delay(p);
    ASSERT_TRUE(best.feasible);
    const SimReport report =
        simulate(p, best.mapping, SimConfig{.frames = 1});
    ASSERT_EQ(report.latencies_s.size(), 1u);
    EXPECT_NEAR(report.latencies_s[0], best.seconds,
                1e-9 * best.seconds + 1e-12)
        << "seed " << seed;
  }
}

TEST(Simulator, SaturatedThroughputEqualsReciprocalBottleneck) {
  // Steady-state rate = 1 / Eq. 2 bottleneck (serialization-only
  // transport: propagation delay does not limit throughput).
  for (std::uint64_t seed = 30; seed < 40; ++seed) {
    const workload::Scenario s = random_instance(seed, 5, 9, 55);
    const Problem p = s.problem({.include_link_delay = false});
    const auto best = core::ElpcMapper().max_frame_rate(p);
    if (!best.feasible) {
      continue;
    }
    const SimReport report =
        simulate(p, best.mapping, SimConfig{.frames = 300});
    EXPECT_NEAR(report.throughput_fps, best.frame_rate(),
                0.01 * best.frame_rate())
        << "seed " << seed;
  }
}

TEST(Simulator, GroupedMappingThroughputMatchesSharedLoadModel) {
  // A node running two modules serves each frame for the sum of their
  // computing times; the relaxed evaluator predicts the simulator.
  workload::Scenario s;
  s.pipeline = pipeline::Pipeline(
      {{"src", 0.0, 10.0}, {"a", 0.2, 10.0}, {"b", 0.3, 8.0},
       {"sink", 0.05, 1.0}});
  s.network.add_node({"n0", 2.0});
  s.network.add_node({"n1", 5.0});
  s.network.add_node({"n2", 4.0});
  s.network.add_duplex_link(0, 1, {500.0, 0.001});
  s.network.add_duplex_link(1, 2, {500.0, 0.001});
  s.source = 0;
  s.destination = 2;
  const Problem p = s.problem({.include_link_delay = false});
  const Mapping grouped({0, 1, 1, 2});
  const auto eval =
      mapping::evaluate_bottleneck(p, grouped, /*enforce_no_reuse=*/false);
  ASSERT_TRUE(eval.feasible);
  const SimReport report = simulate(p, grouped, SimConfig{.frames = 400});
  EXPECT_NEAR(report.throughput_fps, 1.0 / eval.seconds,
              0.01 / eval.seconds);
}

TEST(Simulator, ThrottledInjectionLimitsThroughput) {
  const workload::Scenario s = workload::small_case();
  const Problem p = s.problem({.include_link_delay = false});
  const auto best = core::ElpcMapper().max_frame_rate(p);
  ASSERT_TRUE(best.feasible);
  // Inject at half the sustainable rate: output rate == injection rate.
  const double interval = 2.0 * best.seconds;
  const SimReport report = simulate(
      p, best.mapping,
      SimConfig{.frames = 200, .injection_interval_s = interval});
  EXPECT_NEAR(report.throughput_fps, 1.0 / interval, 0.02 / interval);
}

TEST(Simulator, ThrottledLatencyStaysAtSingleFrameLatency) {
  // Below saturation no queueing builds up: every frame's latency equals
  // the first frame's.
  const workload::Scenario s = workload::small_case();
  const Problem p = s.problem({.include_link_delay = true});
  const auto best = core::ElpcMapper().min_delay(p);
  ASSERT_TRUE(best.feasible);
  const SimReport report = simulate(
      p, best.mapping,
      SimConfig{.frames = 50, .injection_interval_s = best.seconds * 3.0});
  for (double latency : report.latencies_s) {
    EXPECT_NEAR(latency, report.latencies_s.front(), 1e-9);
  }
}

TEST(Simulator, SaturatedLatencyGrowsWithQueueing) {
  // At saturation, later frames wait behind earlier ones at the
  // bottleneck: latency must be non-decreasing.
  const workload::Scenario s = workload::small_case();
  const Problem p = s.problem({.include_link_delay = false});
  const auto best = core::ElpcMapper().max_frame_rate(p);
  ASSERT_TRUE(best.feasible);
  const SimReport report =
      simulate(p, best.mapping, SimConfig{.frames = 100});
  for (std::size_t f = 1; f < report.latencies_s.size(); ++f) {
    EXPECT_GE(report.latencies_s[f], report.latencies_s[f - 1] - 1e-9);
  }
}

TEST(Simulator, CompletionsArriveInFrameOrder) {
  const workload::Scenario s = random_instance(77, 5, 8, 40);
  const Problem p = s.problem();
  const auto best = core::ElpcMapper().min_delay(p);
  ASSERT_TRUE(best.feasible);
  const SimReport report =
      simulate(p, best.mapping, SimConfig{.frames = 60});
  for (std::size_t f = 1; f < report.completions_s.size(); ++f) {
    EXPECT_GE(report.completions_s[f], report.completions_s[f - 1]);
  }
}

TEST(Simulator, RejectsInfeasibleMapping) {
  const workload::Scenario s = random_instance(5, 4, 6, 20);
  const Problem p = s.problem();
  // Wrong endpoints.
  EXPECT_THROW(
      (void)simulate(p, Mapping({1, 1, 1, 1}), SimConfig{.frames = 1}),
      std::invalid_argument);
}

TEST(Simulator, RejectsBadConfig) {
  const workload::Scenario s = workload::small_case();
  const Problem p = s.problem();
  const auto best = core::ElpcMapper().min_delay(p);
  EXPECT_THROW((void)simulate(p, best.mapping, SimConfig{.frames = 0}),
               std::invalid_argument);
  EXPECT_THROW((void)simulate(p, best.mapping,
                              SimConfig{.frames = 1, .warmup_fraction = 1.0}),
               std::invalid_argument);
}

TEST(Simulator, EventCountScalesWithFrames) {
  const workload::Scenario s = workload::small_case();
  const Problem p = s.problem();
  const auto best = core::ElpcMapper().min_delay(p);
  const SimReport small = simulate(p, best.mapping, SimConfig{.frames = 10});
  const SimReport large = simulate(p, best.mapping, SimConfig{.frames = 100});
  EXPECT_GT(large.events, small.events);
  EXPECT_EQ(large.events % large.latencies_s.size(), 0u)
      << "per-frame event count should be uniform for a fixed mapping";
}

}  // namespace
}  // namespace elpc::sim
