#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace elpc::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&]() { order.push_back(3); });
  q.schedule(1.0, [&]() { order.push_back(1); });
  q.schedule(2.0, [&]() { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&]() { order.push_back(1); });
  q.schedule(1.0, [&]() { order.push_back(2); });
  q.schedule(1.0, [&]() { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(2.5, [&]() { seen = q.now(); });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(q.now(), 2.5);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<double> times;
  q.schedule(1.0, [&]() {
    times.push_back(q.now());
    q.schedule_in(0.5, [&]() { times.push_back(q.now()); });
  });
  q.run();
  EXPECT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule(5.0, [&]() {
    EXPECT_THROW(q.schedule(1.0, []() {}), std::invalid_argument);
  });
  q.run();
}

TEST(EventQueue, RejectsNegativeDelay) {
  EventQueue q;
  EXPECT_THROW(q.schedule_in(-1.0, []() {}), std::invalid_argument);
}

TEST(EventQueue, CountsExecutedEvents) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) {
    q.schedule(i, []() {});
  }
  EXPECT_EQ(q.pending(), 10u);
  q.run();
  EXPECT_EQ(q.executed(), 10u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EventBudgetGuardsAgainstRunaway) {
  EventQueue q;
  // Self-perpetuating event chain.
  std::function<void()> loop = [&]() { q.schedule_in(1.0, loop); };
  q.schedule(0.0, loop);
  EXPECT_THROW(q.run(/*max_events=*/100), std::runtime_error);
}

TEST(EventQueue, SimultaneousCascadesStayDeterministic) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&]() {
    order.push_back(1);
    q.schedule(1.0, [&]() { order.push_back(3); });  // same timestamp
  });
  q.schedule(1.0, [&]() { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace elpc::sim
