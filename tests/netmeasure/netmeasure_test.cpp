#include "netmeasure/netmeasure.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace elpc::netmeasure {
namespace {

TEST(ProbePlan, Validation) {
  ProbePlan ok;
  EXPECT_NO_THROW(ok.validate());
  ProbePlan bad = ok;
  bad.probes = 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.min_size_mb = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.relative_noise = -0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(SynthesizeProbes, NoiselessProbesLieOnTheModelLine) {
  util::Rng rng(1);
  const graph::LinkAttr truth{200.0, 0.004};
  ProbePlan plan;
  plan.relative_noise = 0.0;
  const auto probes = synthesize_probes(rng, truth, plan);
  ASSERT_EQ(probes.size(), plan.probes);
  for (const Probe& p : probes) {
    EXPECT_NEAR(p.time_s, p.size_mb / 200.0 + 0.004, 1e-12);
    EXPECT_GE(p.size_mb, plan.min_size_mb);
    EXPECT_LE(p.size_mb, plan.max_size_mb);
  }
}

TEST(EstimateLink, RecoversExactAttributesWithoutNoise) {
  util::Rng rng(2);
  const graph::LinkAttr truth{850.0, 0.0015};
  ProbePlan plan;
  plan.relative_noise = 0.0;
  const LinkEstimate est = estimate_link(synthesize_probes(rng, truth, plan));
  EXPECT_NEAR(est.attr.bandwidth_mbps, 850.0, 1e-6);
  EXPECT_NEAR(est.attr.min_delay_s, 0.0015, 1e-9);
  EXPECT_NEAR(est.r_squared, 1.0, 1e-9);
}

TEST(EstimateLink, RecoversApproximatelyUnderNoise) {
  util::Rng rng(3);
  const graph::LinkAttr truth{400.0, 0.003};
  ProbePlan plan;
  plan.probes = 200;
  plan.relative_noise = 0.05;
  const LinkEstimate est = estimate_link(synthesize_probes(rng, truth, plan));
  EXPECT_NEAR(est.attr.bandwidth_mbps, 400.0, 40.0);
  EXPECT_NEAR(est.attr.min_delay_s, 0.003, 0.002);
  EXPECT_GT(est.r_squared, 0.95);
}

TEST(EstimateLink, NegativeInterceptClampedToZero) {
  // Hand-crafted probes whose OLS intercept is negative.
  const std::vector<Probe> probes = {{1.0, 0.0009}, {2.0, 0.0021},
                                     {3.0, 0.0030}, {4.0, 0.0041}};
  const LinkEstimate est = estimate_link(probes);
  EXPECT_GE(est.attr.min_delay_s, 0.0);
  EXPECT_GT(est.attr.bandwidth_mbps, 0.0);
}

TEST(EstimateLink, RejectsNonChannelData) {
  // Decreasing time with size -> negative slope -> not a channel.
  const std::vector<Probe> probes = {{1.0, 0.010}, {10.0, 0.001}};
  EXPECT_THROW((void)estimate_link(probes), std::invalid_argument);
}

TEST(EstimateLink, RejectsDegenerateInputs) {
  EXPECT_THROW((void)estimate_link({}), std::invalid_argument);
  EXPECT_THROW((void)estimate_link({{1.0, 0.1}}), std::invalid_argument);
}

TEST(MeasureNetwork, PreservesTopologyAndNodes) {
  util::Rng rng(4);
  const graph::Network truth =
      graph::random_connected_network(rng, 8, 30, {});
  util::Rng probe_rng(5);
  const graph::Network measured =
      measure_network(probe_rng, truth, ProbePlan{});
  ASSERT_EQ(measured.node_count(), truth.node_count());
  ASSERT_EQ(measured.link_count(), truth.link_count());
  for (graph::NodeId v = 0; v < truth.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(measured.node(v).processing_power,
                     truth.node(v).processing_power);
    for (const graph::Edge& e : truth.out_edges(v)) {
      EXPECT_TRUE(measured.has_link(e.from, e.to));
    }
  }
}

TEST(MeasureNetwork, EstimatesNearTruth) {
  util::Rng rng(6);
  const graph::Network truth =
      graph::random_connected_network(rng, 6, 20, {});
  util::Rng probe_rng(7);
  ProbePlan plan;
  plan.probes = 100;
  plan.relative_noise = 0.02;
  const graph::Network measured = measure_network(probe_rng, truth, plan);
  for (graph::NodeId v = 0; v < truth.node_count(); ++v) {
    for (const graph::Edge& e : truth.out_edges(v)) {
      const double est = measured.link(e.from, e.to).bandwidth_mbps;
      EXPECT_NEAR(est, e.attr.bandwidth_mbps, 0.15 * e.attr.bandwidth_mbps);
    }
  }
}

TEST(MeasureLinkUpdates, CoversEveryLinkInDeterministicOrder) {
  util::Rng rng(6);
  const graph::Network truth =
      graph::random_connected_network(rng, 6, 20, {});
  ProbePlan plan;
  plan.relative_noise = 0.0;  // noiseless: estimates recover the truth

  util::Rng probe_rng(7);
  const std::vector<graph::LinkUpdate> updates =
      measure_link_updates(probe_rng, truth, plan);
  ASSERT_EQ(updates.size(), truth.link_count());

  std::size_t i = 0;
  for (graph::NodeId v = 0; v < truth.node_count(); ++v) {
    for (const graph::Edge& e : truth.out_edges(v)) {
      EXPECT_EQ(updates[i].from, e.from);
      EXPECT_EQ(updates[i].to, e.to);
      EXPECT_NEAR(updates[i].attr.bandwidth_mbps, e.attr.bandwidth_mbps,
                  1e-6 * e.attr.bandwidth_mbps);
      ++i;
    }
  }

  // The delta feed applies cleanly onto a copy of the measured network.
  graph::Network annotated = truth;
  annotated.finalize();
  annotated.apply_link_updates(updates);
  annotated.validate();
}

}  // namespace
}  // namespace elpc::netmeasure
