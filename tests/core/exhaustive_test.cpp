#include "core/exhaustive.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mapping/evaluator.hpp"
#include "pipeline/generator.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace elpc::core {
namespace {

using mapping::MapResult;

workload::Scenario tiny_line() {
  // 0 -> 1 -> 2 with distinctive costs so the optimum is hand-checkable.
  workload::Scenario s;
  s.pipeline = pipeline::Pipeline(
      {{"src", 0.0, 10.0}, {"mid", 0.4, 6.0}, {"sink", 0.5, 1.0}});
  s.network.add_node({"n0", 2.0});
  s.network.add_node({"n1", 4.0});
  s.network.add_node({"n2", 5.0});
  s.network.add_link(0, 1, {100.0, 0.010});
  s.network.add_link(1, 2, {200.0, 0.005});
  s.source = 0;
  s.destination = 2;
  return s;
}

TEST(Exhaustive, DelayOnLineGraphIsHandValue) {
  const workload::Scenario s = tiny_line();
  const MapResult r = ExhaustiveMapper().min_delay(s.problem());
  ASSERT_TRUE(r.feasible);
  // Candidate mappings: (0,1,2) or (0,1,1)->no, sink must be on 2;
  // (0,0,?) impossible (no 0->2 link); so compare (0,1,2) only... plus
  // grouping mid on destination is impossible without link 0->2.
  EXPECT_NEAR(r.seconds, 0.110 + 1.000 + 0.035 + 0.600, 1e-12);
  EXPECT_EQ(r.mapping.assignment(), (std::vector<graph::NodeId>{0, 1, 2}));
}

TEST(Exhaustive, FrameRateOnLineGraphIsHandValue) {
  const workload::Scenario s = tiny_line();
  const MapResult r = ExhaustiveMapper().max_frame_rate(
      s.problem({.include_link_delay = false}));
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.seconds, 1.0);  // mid on n1 dominates
}

TEST(Exhaustive, RespectsNodeLimit) {
  util::Rng rng(3);
  workload::Scenario s;
  s.pipeline = pipeline::random_pipeline(rng, 4, {});
  s.network = graph::complete_network(rng, 14, {});
  s.source = 0;
  s.destination = 13;
  const ExhaustiveMapper limited(ExhaustiveLimits{.max_nodes = 12});
  const MapResult r = limited.min_delay(s.problem());
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.reason.find("limit"), std::string::npos);
}

TEST(Exhaustive, RespectsModuleLimit) {
  util::Rng rng(4);
  workload::Scenario s;
  s.pipeline = pipeline::random_pipeline(rng, 12, {});
  s.network = graph::complete_network(rng, 5, {});
  s.source = 0;
  s.destination = 4;
  const ExhaustiveMapper limited(
      ExhaustiveLimits{.max_nodes = 12, .max_modules = 10});
  EXPECT_FALSE(limited.min_delay(s.problem()).feasible);
}

TEST(Exhaustive, FrameRateInfeasibleWithoutLongEnoughPath) {
  // Star topology: no simple 3-node path from one leaf to another
  // exists... actually leaf -> hub -> leaf works; use 4 modules instead.
  workload::Scenario s;
  util::Rng rng(5);
  s.pipeline = pipeline::random_pipeline(rng, 4, {});
  s.network.add_node({});  // hub
  s.network.add_node({});
  s.network.add_node({});
  s.network.add_duplex_link(0, 1, {100.0, 0.0});
  s.network.add_duplex_link(0, 2, {100.0, 0.0});
  s.source = 1;
  s.destination = 2;
  // 4 modules need 4 distinct nodes; only 3 exist.
  EXPECT_FALSE(ExhaustiveMapper().max_frame_rate(s.problem()).feasible);
}

TEST(Exhaustive, DelayPruningDoesNotCutOptimum) {
  // Compare branch-and-bound result against a no-pruning reference
  // (the evaluator applied to every mapping the searcher can emit is
  // implicitly covered by the ELPC-vs-exhaustive property test; here we
  // at least confirm determinism).
  util::Rng rng(6);
  workload::Scenario s;
  s.pipeline = pipeline::random_pipeline(rng, 5, {});
  s.network = graph::random_connected_network(rng, 7, 30, {});
  s.source = 0;
  s.destination = 6;
  const MapResult a = ExhaustiveMapper().min_delay(s.problem());
  const MapResult b = ExhaustiveMapper().min_delay(s.problem());
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.mapping, b.mapping);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(NodeLimitDefaultsAreUsable, SmallInstanceRuns) {
  util::Rng rng(7);
  workload::Scenario s;
  s.pipeline = pipeline::random_pipeline(rng, 6, {});
  s.network = graph::random_connected_network(rng, 9, 50, {});
  s.source = 0;
  s.destination = 8;
  EXPECT_TRUE(ExhaustiveMapper().min_delay(s.problem()).feasible);
}

}  // namespace
}  // namespace elpc::core
