#include "core/arena_pool.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

namespace elpc::core {
namespace {

TEST(ArenaPool, LeasesRecycleInsteadOfGrowing) {
  ArenaPool pool;
  EXPECT_EQ(pool.created(), 0u);
  for (int round = 0; round < 5; ++round) {
    const ArenaPool::Lease lease = pool.acquire();
    lease->setup(16, 2, 4, 1);
    EXPECT_EQ(pool.available(), 0u);
  }
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.available(), 1u);
}

TEST(ArenaPool, ConcurrentLeasesGetDistinctArenas) {
  ArenaPool pool;
  {
    const ArenaPool::Lease a = pool.acquire();
    const ArenaPool::Lease b = pool.acquire();
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(pool.created(), 2u);
  }
  EXPECT_EQ(pool.available(), 2u);
}

TEST(ArenaPool, ReusedArenaKeepsItsBuffers) {
  ArenaPool pool;
  std::size_t reallocations = 0;
  {
    const ArenaPool::Lease lease = pool.acquire();
    lease->setup(32, 4, 8, 2);
    reallocations = lease->reallocations();
  }
  {
    const ArenaPool::Lease lease = pool.acquire();
    // Same dimensions on the recycled arena: the steady-state zero-
    // allocation guarantee the DP relies on carries across leases.
    lease->setup(32, 4, 8, 2);
    EXPECT_EQ(lease->reallocations(), reallocations);
  }
}

}  // namespace
}  // namespace elpc::core
