// Kernel parity — every SIMD cell kernel must be BIT-IDENTICAL to the
// scalar reference (the contract in framerate_kernel.hpp).  Two layers:
//
//  * cell level: randomized cells (label values and link metrics drawn
//    from small discrete sets so exact bottleneck/sum ties are common),
//    randomized visited planes, beams crossing the 4- and 8-lane chunk
//    boundaries, and adversarial edge rows (all-tied, fully visited,
//    single-slot) — the kept count and every candidate's
//    (bottleneck, sum, node, slot) must match bitwise;
//  * solve level: full max_frame_rate runs per kernel on random
//    scenarios spanning the one-word and pooled visited-set layouts —
//    seconds and the mapping must match the scalar solve exactly.
//
// Only kernels available_kernels() reports are exercised, so the suite
// passes (vacuously, beyond scalar) on machines without AVX.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/elpc.hpp"
#include "core/kernels/framerate_kernel.hpp"
#include "graph/generators.hpp"
#include "pipeline/generator.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace elpc::core::kernels {
namespace {

std::vector<Kind> simd_kernels() {
  std::vector<Kind> kinds = available_kernels();
  std::erase(kinds, Kind::kScalar);
  return kinds;
}

/// One synthetic DP cell: a previous label column plus an in-edge list.
/// Arrays carry the kernel over-read padding (framerate_kernel.hpp).
struct Cell {
  std::vector<graph::Edge> edges;
  std::vector<double> bottleneck;
  std::vector<double> sum;
  std::vector<std::uint32_t> counts;
  std::vector<std::uint64_t> words;
  CellInputs inputs;  // pointers filled by finish()

  Cell(std::size_t nodes, std::size_t beam) {
    const std::size_t cells = nodes * beam;
    // Pad values are poisonous on purpose: a kernel that USES a lane it
    // should have masked would visibly corrupt the comparison.
    bottleneck.assign(cells + 8, -1e300);
    sum.assign(cells + 8, -1e300);
    counts.assign(nodes, 0);
    words.assign(cells + 8, 0);  // one word-major visited plane
    inputs.beam = beam;
  }

  const CellInputs& finish() {
    inputs.edges = edges.data();
    inputs.edge_count = edges.size();
    inputs.bottleneck = bottleneck.data();
    inputs.sum = sum.data();
    inputs.counts = counts.data();
    inputs.visited = words.data();
    return inputs;
  }
};

/// Runs scalar and every SIMD kernel over the cell in all four
/// (tiebreak, visited-check) configurations, asserting the candidate
/// lists agree bitwise.
void expect_cell_parity(Cell& cell, const char* context) {
  const CellKernelFn scalar = scalar_cell_kernel();
  const std::size_t beam = cell.inputs.beam;
  std::vector<FrameRateArena::Candidate> expected(beam);
  std::vector<FrameRateArena::Candidate> got(beam);
  for (const Kind kind : simd_kernels()) {
    const CellKernelFn simd = kernel_fn(kind);
    for (const bool tiebreak : {false, true}) {
      for (const bool check : {false, true}) {
        cell.inputs.sum_tiebreak = tiebreak;
        const CellInputs& inputs = cell.finish();
        CellInputs masked = inputs;
        if (!check) {
          masked.visited = nullptr;
        }
        const std::size_t kept_ref = scalar(masked, expected.data());
        const std::size_t kept_got = simd(masked, got.data());
        ASSERT_EQ(kept_got, kept_ref)
            << context << " kernel=" << kind_name(kind)
            << " tiebreak=" << tiebreak << " check=" << check;
        for (std::size_t c = 0; c < kept_ref; ++c) {
          // Exact equality on purpose: the parity guarantee is bitwise.
          EXPECT_EQ(got[c].bottleneck, expected[c].bottleneck) << context;
          EXPECT_EQ(got[c].sum, expected[c].sum) << context;
          EXPECT_EQ(got[c].node, expected[c].node) << context;
          EXPECT_EQ(got[c].slot, expected[c].slot) << context;
        }
      }
    }
  }
}

TEST(KernelParity, RandomizedCells) {
  // Small discrete value sets make exact bottleneck/sum ties frequent,
  // which is where slot-selection and insertion-order bugs hide.
  const double values[] = {0.0, 0.25, 0.5, 0.5, 1.0, 2.0, 4.0};
  const double bandwidths[] = {0.5, 1.0, 1.0, 2.0, 8.0};
  util::Rng rng(20260728);
  for (int iter = 0; iter < 600; ++iter) {
    const auto nodes = static_cast<std::size_t>(rng.uniform_int(1, 24));
    const auto beam = static_cast<std::size_t>(rng.uniform_int(1, 17));
    Cell cell(nodes, beam);
    cell.inputs.bit = std::uint64_t{1}
                      << static_cast<unsigned>(rng.uniform_int(0, 63));
    cell.inputs.input_mb = values[rng.uniform_int(1, 6)];
    cell.inputs.comp = values[rng.uniform_int(0, 6)];
    cell.inputs.include_link_delay = rng.uniform_int(0, 1) == 1;
    for (std::size_t u = 0; u < nodes; ++u) {
      const auto count = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(beam)));
      cell.counts[u] = count;
      for (std::uint32_t s = 0; s < count; ++s) {
        const std::size_t slot = u * beam + s;
        cell.bottleneck[slot] = values[rng.uniform_int(0, 6)];
        cell.sum[slot] = values[rng.uniform_int(0, 6)];
        // ~40% of slots have consumed the target node already.
        if (rng.uniform_int(0, 9) < 4) {
          cell.words[slot] |= cell.inputs.bit;
        }
      }
    }
    const auto degree = static_cast<std::size_t>(rng.uniform_int(0, 40));
    for (std::size_t i = 0; i < degree; ++i) {
      graph::Edge e;
      e.from = static_cast<graph::NodeId>(
          rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
      e.to = 0;
      e.attr.bandwidth_mbps = bandwidths[rng.uniform_int(0, 4)];
      e.attr.min_delay_s = values[rng.uniform_int(0, 3)];
      cell.edges.push_back(e);
    }
    expect_cell_parity(cell, "randomized");
  }
}

TEST(KernelParity, AllTiedCellPicksLowestSlotAndFirstNode) {
  // Every row, every slot produces the identical (key, sum): the kept
  // candidates must be the FIRST edges' slot-0 labels, matching the
  // scalar scan order.
  for (const std::size_t beam : {1u, 3u, 4u, 5u, 8u, 9u, 16u, 17u}) {
    Cell cell(6, beam);
    cell.inputs.input_mb = 1.0;
    cell.inputs.comp = 0.5;
    for (std::size_t u = 0; u < 6; ++u) {
      cell.counts[u] = static_cast<std::uint32_t>(beam);
      for (std::size_t s = 0; s < beam; ++s) {
        cell.bottleneck[u * beam + s] = 1.5;
        cell.sum[u * beam + s] = 3.0;
      }
      graph::Edge e;
      e.from = static_cast<graph::NodeId>(u);
      e.to = 0;
      e.attr.bandwidth_mbps = 1.0;
      cell.edges.push_back(e);
    }
    expect_cell_parity(cell, "all-tied");
    cell.inputs.sum_tiebreak = true;
    std::vector<FrameRateArena::Candidate> cand(beam);
    const std::size_t kept =
        scalar_cell_kernel()(cell.finish(), cand.data());
    ASSERT_EQ(kept, std::min<std::size_t>(beam, 6));
    EXPECT_EQ(cand[0].node, 0u);  // first edge wins an exact tie
    EXPECT_EQ(cand[0].slot, 0u);  // lowest slot wins within the row
  }
}

TEST(KernelParity, TieStraddlingChunkBoundary) {
  // The row winner ties between slot 3 (last of the first AVX2 chunk)
  // and slot 4 (first of the second): the cross-chunk combine must keep
  // the earlier slot, exactly like the scalar left-to-right scan.
  const std::size_t beam = 9;
  Cell cell(1, beam);
  cell.inputs.input_mb = 0.5;
  cell.inputs.comp = 0.25;
  cell.counts[0] = 9;
  const double bn[] = {9.0, 8.0, 7.0, 1.0, 1.0, 7.0, 8.0, 9.0, 1.0};
  const double sm[] = {1.0, 1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 1.0, 2.0};
  for (std::size_t s = 0; s < beam; ++s) {
    cell.bottleneck[s] = bn[s];
    cell.sum[s] = sm[s];
  }
  graph::Edge e;
  e.from = 0;
  e.to = 0;
  e.attr.bandwidth_mbps = 1.0;
  cell.edges.push_back(e);
  expect_cell_parity(cell, "chunk-boundary tie");
  cell.inputs.sum_tiebreak = true;
  std::vector<FrameRateArena::Candidate> cand(beam);
  ASSERT_EQ(scalar_cell_kernel()(cell.finish(), cand.data()), 1u);
  EXPECT_EQ(cand[0].slot, 3u);
}

TEST(KernelParity, FullyVisitedCellKeepsNothing) {
  Cell cell(4, 3);
  cell.inputs.input_mb = 1.0;
  for (std::size_t u = 0; u < 4; ++u) {
    cell.counts[u] = 3;
    for (std::size_t s = 0; s < 3; ++s) {
      cell.bottleneck[u * 3 + s] = 1.0;
      cell.sum[u * 3 + s] = 1.0;
      cell.words[u * 3 + s] = ~std::uint64_t{0};
    }
    graph::Edge e;
    e.from = static_cast<graph::NodeId>(u);
    e.to = 0;
    e.attr.bandwidth_mbps = 2.0;
    cell.edges.push_back(e);
  }
  expect_cell_parity(cell, "fully visited");
  std::vector<FrameRateArena::Candidate> cand(3);
  EXPECT_EQ(scalar_cell_kernel()(cell.finish(), cand.data()), 0u);
}

TEST(KernelParity, VisitedPlaneSelectsPerSlotWords) {
  // The visited plane is indexed by slot: only slot 0's word carries the
  // target bit, so slots 1 and 2 must stay eligible and the best of
  // them must win.
  Cell cell(1, 3);
  cell.inputs.bit = std::uint64_t{1} << 17;
  cell.inputs.input_mb = 1.0;
  cell.counts[0] = 3;
  for (std::size_t s = 0; s < 3; ++s) {
    cell.bottleneck[s] = 1.0 + static_cast<double>(s);
    cell.sum[s] = 1.0;
  }
  cell.words[0] = cell.inputs.bit;  // slot 0 visited; slots 1, 2 free
  graph::Edge e;
  e.from = 0;
  e.to = 0;
  e.attr.bandwidth_mbps = 4.0;
  cell.edges.push_back(e);
  expect_cell_parity(cell, "visited plane");
  cell.inputs.sum_tiebreak = true;
  std::vector<FrameRateArena::Candidate> cand(3);
  ASSERT_EQ(scalar_cell_kernel()(cell.finish(), cand.data()), 1u);
  EXPECT_EQ(cand[0].slot, 1u);
}

TEST(KernelParity, DispatchNamesRoundTripAndValidate) {
  for (const Kind kind :
       {Kind::kAuto, Kind::kScalar, Kind::kAvx2, Kind::kAvx512}) {
    EXPECT_EQ(kind_from_name(kind_name(kind)), kind);
  }
  EXPECT_THROW((void)kind_from_name("sse9"), std::invalid_argument);
  EXPECT_EQ(resolve_kernel(Kind::kScalar), Kind::kScalar);
  EXPECT_NE(kernel_fn(Kind::kScalar), nullptr);
  // kAuto resolves to something this process can actually run.
  const Kind resolved = resolve_kernel(Kind::kAuto);
  EXPECT_NE(resolved, Kind::kAuto);
  EXPECT_NE(kernel_fn(resolved), nullptr);
}

/// Full-solve parity: the DP must produce bit-equal answers under every
/// kernel, across the one-word (k <= 64) and pooled (k > 64) layouts
/// and with the beam below, at, and above the vector widths.
TEST(KernelParity, MaxFrameRateSolvesBitIdenticalAcrossKernels) {
  if (simd_kernels().empty()) {
    GTEST_SKIP() << "no SIMD kernel available on this build/CPU";
  }
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    for (const std::size_t nodes : {12u, 80u}) {
      for (const std::size_t beam : {1u, 4u, 9u}) {
        util::Rng rng(seed + nodes + beam);
        workload::Scenario s;
        s.pipeline = pipeline::random_pipeline(rng, 8, {});
        s.network = graph::random_connected_network(rng, nodes,
                                                    nodes * 6, {});
        s.source = 0;
        s.destination = static_cast<graph::NodeId>(nodes - 1);
        const mapping::Problem p = s.problem();

        ElpcOptions base;
        base.framerate_beam_width = beam;
        base.framerate_kernel = Kind::kScalar;
        const mapping::MapResult reference =
            ElpcMapper(base).max_frame_rate(p);
        for (const Kind kind : simd_kernels()) {
          ElpcOptions options = base;
          options.framerate_kernel = kind;
          const mapping::MapResult got =
              ElpcMapper(options).max_frame_rate(p);
          ASSERT_EQ(got.feasible, reference.feasible)
              << kind_name(kind) << " seed=" << seed << " k=" << nodes;
          if (!reference.feasible) {
            continue;
          }
          EXPECT_EQ(got.seconds, reference.seconds)
              << kind_name(kind) << " seed=" << seed << " k=" << nodes
              << " beam=" << beam;
          EXPECT_EQ(got.mapping.assignment(),
                    reference.mapping.assignment())
              << kind_name(kind) << " seed=" << seed << " k=" << nodes
              << " beam=" << beam;
        }
      }
    }
  }
}

}  // namespace
}  // namespace elpc::core::kernels
