// Parity guarantees for the CSR + arena performance core (see
// src/core/README.md):
//
//  * min_delay must be BIT-IDENTICAL to the textbook Eq. 3 recursion —
//    the CSR switch and the scatter/gather sweeps reorder candidate
//    enumeration, and reordering a min over the same candidate multiset
//    must not change the value by even one ulp.
//  * the arena-based frame-rate DP at beam width 1 reproduces the
//    published heuristic's semantics: never better than the exhaustive
//    optimum, exactly optimal on most small instances.
//  * the parallel column sweep (when hardware parallelism exists) is
//    bit-identical to the serial sweep.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/elpc.hpp"
#include "core/exhaustive.hpp"
#include "graph/generators.hpp"
#include "mapping/evaluator.hpp"
#include "pipeline/generator.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace elpc::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using graph::NodeId;
using mapping::MapResult;
using mapping::Problem;

workload::Scenario random_instance(std::uint64_t seed, std::size_t modules,
                                   std::size_t nodes, std::size_t links) {
  util::Rng rng(seed);
  workload::Scenario s;
  s.name = "parity" + std::to_string(seed);
  s.pipeline = pipeline::random_pipeline(rng, modules, {});
  s.network = graph::random_connected_network(rng, nodes, links, {});
  s.source = 0;
  s.destination = nodes - 1;
  return s;
}

/// Textbook Eq. 3 recursion, deliberately independent of the adjacency
/// representation: iterates ALL ordered node pairs through find_link.
/// Any CSR/sweep reordering bug in the production DP shows up as a
/// bitwise difference against this.
double reference_min_delay(const Problem& problem) {
  const pipeline::CostModel model = problem.model();
  const graph::Network& net = *problem.network;
  const std::size_t n = problem.pipeline->module_count();
  const std::size_t k = net.node_count();
  std::vector<double> prev(k, kInf);
  std::vector<double> cur(k, kInf);
  prev[problem.source] = 0.0;
  for (std::size_t j = 1; j < n; ++j) {
    const double input_mb = problem.pipeline->input_mb(j);
    for (NodeId v = 0; v < k; ++v) {
      const double comp = model.computing_time(j, v);
      double best = prev[v] == kInf ? kInf : prev[v] + comp;
      for (NodeId u = 0; u < k; ++u) {
        if (prev[u] == kInf || u == v) {
          continue;
        }
        const auto link = net.find_link(u, v);
        if (!link.has_value()) {
          continue;
        }
        const double cand =
            prev[u] + model.transport_time(input_mb, *link) + comp;
        if (cand < best) {
          best = cand;
        }
      }
      cur[v] = best;
    }
    std::swap(prev, cur);
  }
  return prev[problem.destination];
}

TEST(DpParity, MinDelayBitIdenticalToReference) {
  for (std::uint64_t seed = 1000; seed < 1040; ++seed) {
    util::Rng rng(seed);
    const std::size_t nodes =
        4 + static_cast<std::size_t>(rng.uniform_int(0, 12));
    const std::size_t modules =
        3 + static_cast<std::size_t>(rng.uniform_int(0, 9));
    const std::size_t links = std::max(
        nodes, static_cast<std::size_t>(0.5 * nodes * (nodes - 1)));
    const workload::Scenario s =
        random_instance(seed, modules, nodes, links);
    const Problem p = s.problem();
    const MapResult r = ElpcMapper().min_delay(p);
    const double expected = reference_min_delay(p);
    if (expected == kInf) {
      EXPECT_FALSE(r.feasible) << "seed " << seed;
      continue;
    }
    ASSERT_TRUE(r.feasible) << "seed " << seed;
    // Exact equality on purpose: same candidate multiset, same arithmetic
    // per candidate, so the minima must agree to the last bit.
    EXPECT_EQ(r.seconds, expected) << "seed " << seed;
  }
}

TEST(DpParity, MinDelayMappingStillEvaluatorExact) {
  for (std::uint64_t seed = 1100; seed < 1120; ++seed) {
    const workload::Scenario s = random_instance(seed, 6, 9, 40);
    const Problem p = s.problem();
    const MapResult r = ElpcMapper().min_delay(p);
    if (!r.feasible) {
      continue;
    }
    const mapping::Evaluation eval = mapping::evaluate_total_delay(p, r.mapping);
    ASSERT_TRUE(eval.feasible) << "seed " << seed;
    EXPECT_EQ(eval.seconds, r.seconds) << "seed " << seed;
  }
}

TEST(DpParity, BeamOneArenaDpNeverBeatsExhaustive) {
  ElpcOptions bare;
  bare.framerate_beam_width = 1;
  bare.framerate_sum_tiebreak = false;
  bare.framerate_local_search = false;
  const ElpcMapper plain(bare);
  std::size_t matched = 0;
  std::size_t comparable = 0;
  for (std::uint64_t seed = 1200; seed < 1260; ++seed) {
    const workload::Scenario s = random_instance(seed, 4, 7, 30);
    const Problem p = s.problem();
    const MapResult heur = plain.max_frame_rate(p);
    const MapResult exact = ExhaustiveMapper().max_frame_rate(p);
    if (heur.feasible) {
      // The heuristic only ever proposes real simple paths, so exhaustive
      // search must find at least as good a one.
      ASSERT_TRUE(exact.feasible) << "seed " << seed;
      EXPECT_GE(heur.seconds, exact.seconds * (1.0 - 1e-12))
          << "seed " << seed;
      const mapping::Evaluation eval = mapping::evaluate_bottleneck(
          p, heur.mapping, /*enforce_no_reuse=*/true);
      ASSERT_TRUE(eval.feasible) << "seed " << seed;
    }
    if (heur.feasible && exact.feasible) {
      ++comparable;
      if (heur.seconds <= exact.seconds * (1.0 + 1e-12)) {
        ++matched;
      }
    }
  }
  // "Extremely rare" misses (paper Section 3.1.2): the bare width-1
  // recursion must still be exactly optimal on the vast majority.
  ASSERT_GT(comparable, 40u);
  EXPECT_GE(static_cast<double>(matched), 0.85 * comparable);
}

TEST(DpParity, ParallelSweepBitIdenticalToSerial) {
  // Large enough to cross the parallel thresholds on multicore machines;
  // on single-core machines both configurations take the serial path and
  // the assertion is trivially exact either way.
  const workload::Scenario s = random_instance(77, 12, 160, 18000);
  const Problem p = s.problem();
  ElpcOptions serial;
  serial.parallel_sweep = false;
  const MapResult a = ElpcMapper(serial).min_delay(p);
  const MapResult b = ElpcMapper().min_delay(p);
  ASSERT_EQ(a.feasible, b.feasible);
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.seconds, b.seconds);

  const MapResult fa = ElpcMapper(serial).max_frame_rate(p);
  const MapResult fb = ElpcMapper().max_frame_rate(p);
  ASSERT_EQ(fa.feasible, fb.feasible);
  if (fa.feasible) {
    EXPECT_EQ(fa.seconds, fb.seconds);
  }
}

TEST(DpParity, RepeatedCallsAreDeterministic) {
  // The thread_local arena is reused across calls; stale state from a
  // previous (larger) instance must never leak into a later run.
  const workload::Scenario big = random_instance(5, 8, 30, 400);
  const workload::Scenario small = random_instance(6, 4, 8, 30);
  const ElpcMapper mapper;
  const MapResult first = mapper.max_frame_rate(small.problem());
  (void)mapper.max_frame_rate(big.problem());
  const MapResult again = mapper.max_frame_rate(small.problem());
  ASSERT_EQ(first.feasible, again.feasible);
  if (first.feasible) {
    EXPECT_EQ(first.seconds, again.seconds);
    EXPECT_EQ(first.mapping.assignment(), again.mapping.assignment());
  }
}

}  // namespace
}  // namespace elpc::core
