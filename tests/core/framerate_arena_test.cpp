#include "core/framerate_arena.hpp"

#include <gtest/gtest.h>

namespace elpc::core {
namespace {

TEST(FrameRateArena, SetupSizesBuffers) {
  FrameRateArena arena;
  arena.setup(/*node_count=*/10, /*beam=*/3, /*columns=*/5, /*chunks=*/2);
  EXPECT_EQ(arena.beam(), 3u);
  EXPECT_EQ(arena.words_per_set(), 1u);  // <= 64 nodes fit one word
  EXPECT_NE(arena.bottleneck(0), nullptr);
  EXPECT_NE(arena.bottleneck(1), nullptr);
  EXPECT_NE(arena.sum(0), nullptr);
  EXPECT_NE(arena.counts(0), nullptr);
  EXPECT_NE(arena.words(0), nullptr);
  EXPECT_NE(arena.parents(), nullptr);
  EXPECT_NE(arena.scratch(1), nullptr);
}

TEST(FrameRateArena, PooledWordsAboveSixtyFourNodes) {
  FrameRateArena arena;
  arena.setup(/*node_count=*/65, /*beam=*/2, /*columns=*/3, /*chunks=*/1);
  EXPECT_EQ(arena.words_per_set(), 2u);  // ceil(65 / 64)
  EXPECT_NE(arena.words(0), nullptr);
  EXPECT_NE(arena.words(1), nullptr);
}

TEST(FrameRateArena, SoaFieldsAreContiguousPerRow) {
  // The row kernels (src/core/kernels/) load a cell's slots as one
  // contiguous vector: field of (node, slot) must live at
  // node * beam + slot in each per-field array.
  FrameRateArena arena;
  arena.setup(/*node_count=*/6, /*beam=*/4, /*columns=*/3, /*chunks=*/1);
  double* bn = arena.bottleneck(0);
  for (std::size_t cell = 0; cell < 6 * 4; ++cell) {
    bn[cell] = static_cast<double>(cell);
  }
  // Node 2's row is slots 8..11, adjacent in memory.
  EXPECT_EQ(bn + 2 * 4 + 1, &bn[9]);
  EXPECT_EQ(bn[2 * 4 + 3], 11.0);
  // Visited words are word-major planes word_plane_stride() apart.
  EXPECT_EQ(arena.words_per_set(), 1u);
  EXPECT_EQ(arena.word_plane_stride(),
            6 * 4 + FrameRateArena::kVectorPad);
}

TEST(FrameRateArena, ReusedSetupAllocatesNothing) {
  // The steady-state guarantee the DP relies on: once the arena covers an
  // instance's dimensions, running that instance again (or any smaller
  // one) must not touch the allocator.
  FrameRateArena arena;
  arena.setup(200, 4, 30, 8);
  const std::size_t after_first = arena.reallocations();
  const auto* bottleneck0 = arena.bottleneck(0);
  const auto* sum0 = arena.sum(0);
  const auto* words0 = arena.words(0);
  const auto* parents0 = arena.parents();

  arena.setup(200, 4, 30, 8);  // identical dimensions
  EXPECT_EQ(arena.reallocations(), after_first);
  arena.setup(100, 4, 20, 8);  // strictly smaller
  EXPECT_EQ(arena.reallocations(), after_first);
  arena.setup(200, 4, 30, 8);  // back up within existing capacity
  EXPECT_EQ(arena.reallocations(), after_first);

  EXPECT_EQ(arena.bottleneck(0), bottleneck0);
  EXPECT_EQ(arena.sum(0), sum0);
  EXPECT_EQ(arena.words(0), words0);
  EXPECT_EQ(arena.parents(), parents0);
}

TEST(FrameRateArena, GrowingSetupIsCounted) {
  FrameRateArena arena;
  arena.setup(50, 2, 10, 1);
  const std::size_t baseline = arena.reallocations();
  arena.setup(500, 2, 10, 1);  // larger node count must grow buffers
  EXPECT_GT(arena.reallocations(), baseline);
}

TEST(FrameRateArena, ClearColumnZeroesOnlyCounts) {
  FrameRateArena arena;
  arena.setup(8, 2, 4, 1);
  arena.counts(0)[3] = 2;
  arena.counts(1)[5] = 1;
  arena.clear_column(0);
  EXPECT_EQ(arena.counts(0)[3], 0u);
  EXPECT_EQ(arena.counts(1)[5], 1u);  // other parity untouched
}

TEST(FrameRateArena, ScratchRowsAreDisjoint) {
  FrameRateArena arena;
  arena.setup(8, 3, 4, 4);
  EXPECT_EQ(arena.scratch(1), arena.scratch(0) + 3);
  EXPECT_EQ(arena.scratch(3), arena.scratch(0) + 9);
}

}  // namespace
}  // namespace elpc::core
