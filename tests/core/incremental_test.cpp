// Incremental (delta-driven, column-reuse) frame-rate re-solves must be
// BIT-IDENTICAL to from-scratch solves — same seconds, same mapping —
// under arbitrary link-update sequences, and must fall back to a full
// solve (recapturing the checkpoint) whenever the checkpoint cannot
// prove reuse safe.  The CI incremental-parity job extends this suite
// with per-kernel fuzzing over serialized batch results.

#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/elpc.hpp"
#include "graph/generators.hpp"
#include "pipeline/generator.hpp"
#include "util/rng.hpp"

namespace elpc::core {
namespace {

using graph::LinkAttr;
using graph::LinkUpdate;
using graph::Network;
using graph::NodeId;

Network make_network(std::uint64_t seed, std::size_t nodes,
                     std::size_t links) {
  util::Rng rng(seed);
  return graph::random_connected_network(rng, nodes, links,
                                         graph::AttributeRanges{});
}

pipeline::Pipeline make_pipeline(std::uint64_t seed, std::size_t modules) {
  util::Rng rng(seed);
  return pipeline::random_pipeline(rng, modules, pipeline::PipelineRanges{});
}

mapping::Problem framerate_problem(const pipeline::Pipeline& pipeline,
                                   const Network& net, NodeId source,
                                   NodeId destination) {
  return mapping::Problem(pipeline, net, source, destination,
                          pipeline::CostOptions{.include_link_delay = false});
}

/// Incremental-vs-scratch comparison for one state of `net`:
/// `incremental` solves with the persistent checkpoint + delta, scratch
/// runs a plain mapper on the same network.  Exact (==) equality.
void expect_parity(const pipeline::Pipeline& pipeline, const Network& net,
                   NodeId source, NodeId destination,
                   IncrementalCheckpoint& ckpt,
                   const std::vector<LinkUpdate>* delta,
                   IncrementalStats* stats, const std::string& context) {
  ElpcOptions inc_options;
  inc_options.checkpoint = &ckpt;
  inc_options.delta = delta;
  inc_options.incremental_stats = stats;
  const mapping::MapResult inc =
      ElpcMapper(inc_options).max_frame_rate(
          framerate_problem(pipeline, net, source, destination));
  const mapping::MapResult scratch = ElpcMapper().max_frame_rate(
      framerate_problem(pipeline, net, source, destination));
  ASSERT_EQ(inc.feasible, scratch.feasible) << context;
  if (scratch.feasible) {
    EXPECT_EQ(inc.seconds, scratch.seconds) << context;
    EXPECT_EQ(inc.mapping, scratch.mapping) << context;
  }
}

/// 1..max_links random metric deltas on existing links.
std::vector<LinkUpdate> random_updates(util::Rng& rng, const Network& net,
                                       std::size_t max_links) {
  const std::size_t count = 1 + rng.index(max_links);
  std::vector<LinkUpdate> updates;
  for (std::size_t i = 0; i < count; ++i) {
    NodeId from = rng.index(net.node_count());
    while (net.out_degree(from) == 0) {
      from = rng.index(net.node_count());
    }
    const graph::Edge edge =
        net.out_edges(from)[rng.index(net.out_degree(from))];
    updates.push_back(LinkUpdate{
        edge.from, edge.to,
        LinkAttr{edge.attr.bandwidth_mbps * rng.uniform_real(0.3, 3.0),
                 edge.attr.min_delay_s * rng.uniform_real(0.5, 2.0)}});
  }
  return updates;
}

TEST(Incremental, EmptyDeltaReplaysEveryColumn) {
  const pipeline::Pipeline pipeline = make_pipeline(3, 5);
  const Network net = make_network(7, 12, 70);
  IncrementalCheckpoint ckpt;
  IncrementalStats stats;

  // First solve: nothing to reuse; captures.
  expect_parity(pipeline, net, 0, 11, ckpt, nullptr, &stats, "capture");
  EXPECT_TRUE(stats.attempted);
  EXPECT_FALSE(stats.incremental);
  EXPECT_STREQ(stats.fallback, "no-checkpoint");
  EXPECT_TRUE(ckpt.valid());

  // Unchanged network + empty delta: pure replay, zero kernel runs.
  const std::vector<LinkUpdate> none;
  expect_parity(pipeline, net, 0, 11, ckpt, &none, &stats, "replay");
  EXPECT_TRUE(stats.incremental);
  EXPECT_EQ(stats.fallback, nullptr);
  EXPECT_EQ(stats.columns_reused, stats.columns_total);
  EXPECT_EQ(stats.cells_recomputed, 0u);
}

TEST(Incremental, RandomUpdateSequencesMatchScratch) {
  // The 80-node case crosses the 64-node boundary, so checkpoint
  // columns carry multi-word visited planes (words_per_set == 2).
  for (const auto& [net_seed, nodes, links, modules] :
       {std::tuple<std::uint64_t, std::size_t, std::size_t, std::size_t>{
            11, 12, 70, 5},
        {12, 25, 300, 8},
        {13, 16, 60, 9},
        {14, 80, 900, 10}}) {
    Network net = make_network(net_seed, nodes, links);
    const pipeline::Pipeline pipeline = make_pipeline(net_seed + 50, modules);
    IncrementalCheckpoint ckpt;
    util::Rng rng(net_seed * 1000 + 1);

    IncrementalStats stats;
    expect_parity(pipeline, net, 0, nodes - 1, ckpt, nullptr, &stats,
                  "initial");
    std::size_t hits = 0;
    for (int round = 0; round < 12; ++round) {
      const std::vector<LinkUpdate> updates = random_updates(rng, net, 2);
      net.apply_link_updates(updates);
      expect_parity(pipeline, net, 0, nodes - 1, ckpt, &updates, &stats,
                    "seed " + std::to_string(net_seed) + " round " +
                        std::to_string(round));
      hits += stats.incremental ? 1 : 0;
    }
    // Two-link updates on these sizes are always narrow enough to reuse.
    EXPECT_EQ(hits, 12u) << net_seed;
  }
}

TEST(Incremental, UpdateIntoDestinationReachesLastColumn) {
  Network net = make_network(21, 14, 80);
  const pipeline::Pipeline pipeline = make_pipeline(22, 6);
  const NodeId destination = 13;
  ASSERT_GT(net.in_degree(destination), 0u);
  IncrementalCheckpoint ckpt;
  IncrementalStats stats;
  expect_parity(pipeline, net, 0, destination, ckpt, nullptr, &stats,
                "initial");

  // The only cell computed in the final column is the destination's;
  // throttling a link INTO it must dirty exactly that frontier and stay
  // bit-identical.
  const graph::Edge edge = net.in_edges(destination).front();
  for (const double factor : {0.05, 20.0, 1.0}) {
    const std::vector<LinkUpdate> updates = {LinkUpdate{
        edge.from, edge.to,
        LinkAttr{edge.attr.bandwidth_mbps * factor, edge.attr.min_delay_s}}};
    net.apply_link_updates(updates);
    expect_parity(pipeline, net, 0, destination, ckpt, &updates, &stats,
                  "factor " + std::to_string(factor));
    EXPECT_TRUE(stats.incremental);
  }
}

TEST(Incremental, BandwidthSwingMovesCandidatesInAndOutOfTheBeam) {
  // Swinging one link's bandwidth across two orders of magnitude makes
  // its transport term dominate or vanish, so the predecessor it feeds
  // enters and leaves cells' beams — the "row widens/narrows" edge case.
  Network net = make_network(31, 12, 70);
  const pipeline::Pipeline pipeline = make_pipeline(32, 6);
  IncrementalCheckpoint ckpt;
  IncrementalStats stats;
  expect_parity(pipeline, net, 0, 11, ckpt, nullptr, &stats, "initial");

  const graph::Edge edge = net.out_edges(3).front();
  for (const double factor :
       {0.01, 0.1, 0.5, 1.0, 2.0, 10.0, 100.0, 0.01, 100.0}) {
    const std::vector<LinkUpdate> updates = {LinkUpdate{
        edge.from, edge.to,
        LinkAttr{edge.attr.bandwidth_mbps * factor, edge.attr.min_delay_s}}};
    net.apply_link_updates(updates);
    expect_parity(pipeline, net, 0, 11, ckpt, &updates, &stats,
                  "factor " + std::to_string(factor));
    EXPECT_TRUE(stats.incremental);
  }
}

TEST(Incremental, NoOpUpdateReplaysAllColumns) {
  Network net = make_network(41, 12, 70);
  const pipeline::Pipeline pipeline = make_pipeline(42, 5);
  IncrementalCheckpoint ckpt;
  IncrementalStats stats;
  expect_parity(pipeline, net, 0, 11, ckpt, nullptr, &stats, "initial");

  // Re-publishing a link's existing attributes recomputes its target's
  // cells but changes nothing, so no difference ever propagates.
  const graph::Edge edge = net.out_edges(0).front();
  const std::vector<LinkUpdate> updates = {
      LinkUpdate{edge.from, edge.to, edge.attr}};
  net.apply_link_updates(updates);
  expect_parity(pipeline, net, 0, 11, ckpt, &updates, &stats, "no-op");
  EXPECT_TRUE(stats.incremental);
  EXPECT_EQ(stats.columns_reused, stats.columns_total);
  EXPECT_GT(stats.cells_recomputed, 0u);
  EXPECT_LT(stats.cells_recomputed, stats.cells_total);
}

TEST(Incremental, FallsBackWithoutDeltaAndRecaptures) {
  Network net = make_network(51, 12, 70);
  const pipeline::Pipeline pipeline = make_pipeline(52, 5);
  IncrementalCheckpoint ckpt;
  IncrementalStats stats;
  expect_parity(pipeline, net, 0, 11, ckpt, nullptr, &stats, "initial");

  const graph::Edge edge = net.out_edges(0).front();
  std::vector<LinkUpdate> updates = {LinkUpdate{
      edge.from, edge.to,
      LinkAttr{edge.attr.bandwidth_mbps * 0.5, edge.attr.min_delay_s}}};
  net.apply_link_updates(updates);
  // Unknown delta: must not reuse, must recapture.
  expect_parity(pipeline, net, 0, 11, ckpt, nullptr, &stats, "no delta");
  EXPECT_FALSE(stats.incremental);
  EXPECT_STREQ(stats.fallback, "no-delta");
  // The recaptured checkpoint serves the next delta incrementally.
  updates[0].attr.bandwidth_mbps = edge.attr.bandwidth_mbps * 2.0;
  net.apply_link_updates(updates);
  expect_parity(pipeline, net, 0, 11, ckpt, &updates, &stats, "after");
  EXPECT_TRUE(stats.incremental);
}

TEST(Incremental, FallsBackOnStaleDeltaVersion) {
  Network net = make_network(61, 12, 70);
  const pipeline::Pipeline pipeline = make_pipeline(62, 5);
  IncrementalCheckpoint ckpt;
  IncrementalStats stats;
  expect_parity(pipeline, net, 0, 11, ckpt, nullptr, &stats, "initial");

  // Apply TWO update batches but only admit to the second: the version
  // arithmetic catches the gap.
  const graph::Edge edge = net.out_edges(0).front();
  for (const double factor : {0.5, 0.25}) {
    const std::vector<LinkUpdate> updates = {LinkUpdate{
        edge.from, edge.to,
        LinkAttr{edge.attr.bandwidth_mbps * factor, edge.attr.min_delay_s}}};
    net.apply_link_updates(updates);
    if (factor == 0.25) {
      expect_parity(pipeline, net, 0, 11, ckpt, &updates, &stats, "stale");
      EXPECT_FALSE(stats.incremental);
      EXPECT_STREQ(stats.fallback, "network-version-mismatch");
    }
  }
}

TEST(Incremental, FallsBackOnWideUpdateAndEvictedCheckpoint) {
  Network net = make_network(71, 12, 70);
  const pipeline::Pipeline pipeline = make_pipeline(72, 5);
  IncrementalCheckpoint ckpt;
  IncrementalStats stats;
  expect_parity(pipeline, net, 0, 11, ckpt, nullptr, &stats, "initial");

  // Touch every link: far past the dirty-fraction bound.
  std::vector<LinkUpdate> wide;
  for (NodeId v = 0; v < net.node_count(); ++v) {
    for (const graph::Edge& e : net.out_edges(v)) {
      wide.push_back(LinkUpdate{
          e.from, e.to,
          LinkAttr{e.attr.bandwidth_mbps * 0.9, e.attr.min_delay_s}});
    }
  }
  net.apply_link_updates(wide);
  expect_parity(pipeline, net, 0, 11, ckpt, &wide, &stats, "wide");
  EXPECT_FALSE(stats.incremental);
  EXPECT_STREQ(stats.fallback, "wide-update");

  // Invalidation (what a cache eviction amounts to mid-sequence): the
  // next solve is a full recapture, and the one after reuses again.
  ckpt.invalidate();
  const graph::Edge edge = net.out_edges(0).front();
  std::vector<LinkUpdate> updates = {LinkUpdate{
      edge.from, edge.to,
      LinkAttr{edge.attr.bandwidth_mbps * 3.0, edge.attr.min_delay_s}}};
  net.apply_link_updates(updates);
  expect_parity(pipeline, net, 0, 11, ckpt, &updates, &stats, "evicted");
  EXPECT_FALSE(stats.incremental);
  EXPECT_STREQ(stats.fallback, "no-checkpoint");
  updates[0].attr.bandwidth_mbps = edge.attr.bandwidth_mbps;
  net.apply_link_updates(updates);
  expect_parity(pipeline, net, 0, 11, ckpt, &updates, &stats, "recovered");
  EXPECT_TRUE(stats.incremental);
}

TEST(Incremental, FingerprintRejectsDifferentProblem) {
  const Network net = make_network(81, 12, 70);
  const pipeline::Pipeline pipeline_a = make_pipeline(82, 5);
  const pipeline::Pipeline pipeline_b = make_pipeline(83, 5);
  IncrementalCheckpoint ckpt;
  IncrementalStats stats;
  expect_parity(pipeline_a, net, 0, 11, ckpt, nullptr, &stats, "capture");

  const std::vector<LinkUpdate> none;
  // Different pipeline, different endpoints: both must refuse to replay.
  expect_parity(pipeline_b, net, 0, 11, ckpt, &none, &stats, "pipeline");
  EXPECT_STREQ(stats.fallback, "fingerprint-mismatch");
  expect_parity(pipeline_b, net, 1, 11, ckpt, &none, &stats, "endpoints");
  EXPECT_STREQ(stats.fallback, "fingerprint-mismatch");
}

TEST(Incremental, CheckpointBytesAreChargedAndBounded) {
  const Network net = make_network(91, 12, 70);
  const pipeline::Pipeline pipeline = make_pipeline(92, 5);
  IncrementalCheckpoint ckpt;
  EXPECT_LT(ckpt.approx_bytes(), std::size_t{4096});

  ElpcOptions options;
  options.checkpoint = &ckpt;
  (void)ElpcMapper(options).max_frame_rate(
      framerate_problem(pipeline, net, 0, 11));
  // 5 columns x 12 nodes x beam 4: comfortably under a megabyte, but
  // clearly charged.
  EXPECT_GT(ckpt.approx_bytes(), std::size_t{5000});
  EXPECT_LT(ckpt.approx_bytes(), std::size_t{1} << 20);
}

}  // namespace
}  // namespace elpc::core
