// Cooperative abort probe (ElpcOptions::abort_probe): per-column
// cancellation/deadline checks in both ELPC objectives.  The probe must
// stop a solve promptly (SolveAborted, carrying the reason) and — when
// it never fires — must not perturb results at all.

#include <gtest/gtest.h>

#include <atomic>

#include "core/elpc.hpp"
#include "graph/generators.hpp"
#include "pipeline/generator.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace elpc::core {
namespace {

using mapping::MapResult;
using mapping::Problem;

workload::Scenario random_instance(std::uint64_t seed, std::size_t modules,
                                   std::size_t nodes, std::size_t links) {
  util::Rng rng(seed);
  workload::Scenario s;
  s.name = "abort" + std::to_string(seed);
  s.pipeline = pipeline::random_pipeline(rng, modules, {});
  s.network = graph::random_connected_network(rng, nodes, links, {});
  s.source = 0;
  s.destination = nodes - 1;
  return s;
}

pipeline::CostOptions no_mld() { return {.include_link_delay = false}; }

TEST(ElpcAbort, ImmediateTimeoutStopsBothObjectives) {
  const workload::Scenario s = random_instance(11, 6, 12, 70);
  ElpcOptions options;
  options.abort_probe = []() { return SolveAbort::kTimedOut; };
  const ElpcMapper mapper(options);
  try {
    (void)mapper.max_frame_rate(s.problem(no_mld()));
    FAIL() << "frame-rate solve ignored the abort probe";
  } catch (const SolveAborted& aborted) {
    EXPECT_EQ(aborted.reason(), SolveAbort::kTimedOut);
  }
  try {
    (void)mapper.min_delay(s.problem(no_mld()));
    FAIL() << "min-delay solve ignored the abort probe";
  } catch (const SolveAborted& aborted) {
    EXPECT_EQ(aborted.reason(), SolveAbort::kTimedOut);
  }
}

TEST(ElpcAbort, CancellationCarriesItsOwnReason) {
  const workload::Scenario s = random_instance(12, 5, 10, 55);
  ElpcOptions options;
  options.abort_probe = []() { return SolveAbort::kCancelled; };
  try {
    (void)ElpcMapper(options).max_frame_rate(s.problem(no_mld()));
    FAIL() << "solve ignored the abort probe";
  } catch (const SolveAborted& aborted) {
    EXPECT_EQ(aborted.reason(), SolveAbort::kCancelled);
  }
}

TEST(ElpcAbort, ProbeIsPolledOncePerColumnNotOncePerSolve) {
  // n modules => n - 1 computed DP columns (module 0 is the source
  // stage) => at least n - 1 probe polls.  A probe that only ran at
  // solve entry would defeat the latency bound the hook exists for.
  const std::size_t modules = 6;
  const workload::Scenario s = random_instance(13, modules, 12, 70);
  std::atomic<std::size_t> polls{0};
  ElpcOptions options;
  options.abort_probe = [&polls]() {
    polls.fetch_add(1, std::memory_order_relaxed);
    return SolveAbort::kNone;
  };
  const MapResult r = ElpcMapper(options).max_frame_rate(s.problem(no_mld()));
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(polls.load(), modules - 1);
}

TEST(ElpcAbort, NeverFiringProbeIsBitIdenticalToNoProbe) {
  for (std::uint64_t seed = 30; seed < 35; ++seed) {
    const workload::Scenario s = random_instance(seed, 5, 11, 60);
    const Problem p = s.problem(no_mld());
    const MapResult plain = ElpcMapper().max_frame_rate(p);
    ElpcOptions options;
    options.abort_probe = []() { return SolveAbort::kNone; };
    const MapResult probed = ElpcMapper(options).max_frame_rate(p);
    ASSERT_EQ(plain.feasible, probed.feasible) << seed;
    EXPECT_EQ(plain.seconds, probed.seconds) << seed;
    EXPECT_EQ(plain.mapping, probed.mapping) << seed;

    const MapResult plain_delay = ElpcMapper().min_delay(p);
    const MapResult probed_delay = ElpcMapper(options).min_delay(p);
    EXPECT_EQ(plain_delay.seconds, probed_delay.seconds) << seed;
    EXPECT_EQ(plain_delay.mapping, probed_delay.mapping) << seed;
  }
}

TEST(ElpcAbort, MidSolveAbortLeavesMapperReusable) {
  // Abort one solve partway through, then run the same mapper instance
  // clean: the abort must not poison later solves (checkpoint-style
  // state is invalidated up front, not left half-written).
  const workload::Scenario s = random_instance(14, 6, 12, 70);
  std::atomic<std::size_t> polls{0};
  std::atomic<bool> arm{true};
  ElpcOptions options;
  options.abort_probe = [&polls, &arm]() {
    const std::size_t n = polls.fetch_add(1, std::memory_order_relaxed);
    return (arm.load() && n >= 2) ? SolveAbort::kTimedOut : SolveAbort::kNone;
  };
  const ElpcMapper mapper(options);
  EXPECT_THROW((void)mapper.max_frame_rate(s.problem(no_mld())), SolveAborted);
  arm.store(false);
  const MapResult after = mapper.max_frame_rate(s.problem(no_mld()));
  const MapResult reference = ElpcMapper().max_frame_rate(s.problem(no_mld()));
  ASSERT_TRUE(after.feasible);
  EXPECT_EQ(after.seconds, reference.seconds);
  EXPECT_EQ(after.mapping, reference.mapping);
}

}  // namespace
}  // namespace elpc::core
