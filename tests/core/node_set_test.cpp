#include "core/node_set.hpp"

#include <gtest/gtest.h>

namespace elpc::core {
namespace {

TEST(NodeSet, StartsEmpty) {
  NodeSet s(100);
  EXPECT_EQ(s.capacity(), 100u);
  EXPECT_EQ(s.count(), 0u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(s.contains(i));
  }
}

TEST(NodeSet, InsertAndContains) {
  NodeSet s(70);
  s.insert(0);
  s.insert(63);
  s.insert(64);  // crosses the word boundary
  s.insert(69);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(69));
  EXPECT_FALSE(s.contains(1));
  EXPECT_FALSE(s.contains(65));
  EXPECT_EQ(s.count(), 4u);
}

TEST(NodeSet, InsertIsIdempotent) {
  NodeSet s(10);
  s.insert(3);
  s.insert(3);
  EXPECT_EQ(s.count(), 1u);
}

TEST(NodeSet, CopiesAreIndependent) {
  NodeSet a(10);
  a.insert(1);
  NodeSet b = a;
  b.insert(2);
  EXPECT_TRUE(b.contains(1));
  EXPECT_TRUE(b.contains(2));
  EXPECT_FALSE(a.contains(2));
}

TEST(NodeSet, Equality) {
  NodeSet a(10);
  NodeSet b(10);
  EXPECT_TRUE(a == b);
  a.insert(5);
  EXPECT_FALSE(a == b);
  b.insert(5);
  EXPECT_TRUE(a == b);
}

TEST(NodeSet, ExactWordBoundaryCapacity) {
  NodeSet s(64);
  s.insert(63);
  EXPECT_TRUE(s.contains(63));
  EXPECT_EQ(s.count(), 1u);
}

}  // namespace
}  // namespace elpc::core
