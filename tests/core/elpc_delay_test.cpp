#include <gtest/gtest.h>

#include "core/elpc.hpp"
#include "core/exhaustive.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "mapping/evaluator.hpp"
#include "pipeline/generator.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/small_case.hpp"

namespace elpc::core {
namespace {

using mapping::MapResult;
using mapping::Problem;

workload::Scenario random_instance(std::uint64_t seed, std::size_t modules,
                                   std::size_t nodes, std::size_t links) {
  util::Rng rng(seed);
  workload::Scenario s;
  s.name = "t" + std::to_string(seed);
  s.pipeline = pipeline::random_pipeline(rng, modules, {});
  s.network = graph::random_connected_network(rng, nodes, links, {});
  s.source = 0;
  s.destination = nodes - 1;
  return s;
}

TEST(ElpcDelay, FeasibleOnConnectedNetwork) {
  const workload::Scenario s = random_instance(1, 6, 8, 30);
  const MapResult r = ElpcMapper().min_delay(s.problem());
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(ElpcDelay, ResultPassesEvaluatorWithSameValue) {
  const workload::Scenario s = random_instance(2, 7, 9, 40);
  const Problem p = s.problem();
  const MapResult r = ElpcMapper().min_delay(p);
  ASSERT_TRUE(r.feasible);
  const mapping::Evaluation e = mapping::evaluate_total_delay(p, r.mapping);
  ASSERT_TRUE(e.feasible);
  EXPECT_NEAR(e.seconds, r.seconds, 1e-12);
}

TEST(ElpcDelay, EndpointsPinned) {
  const workload::Scenario s = random_instance(3, 5, 8, 30);
  const MapResult r = ElpcMapper().min_delay(s.problem());
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.mapping.node_of(0), s.source);
  EXPECT_EQ(r.mapping.node_of(4), s.destination);
}

TEST(ElpcDelay, SourceEqualsDestinationUsesOneComputer) {
  // The paper's q = 1 degenerate case: "the path reduces to a single
  // computer when q = 1" — legal for the delay problem.
  workload::Scenario s = random_instance(4, 4, 6, 20);
  s.destination = s.source;
  const MapResult r = ElpcMapper().min_delay(s.problem());
  ASSERT_TRUE(r.feasible);
  // All-on-source is feasible; the optimum can still hop out and back,
  // but must start and end at the source.
  EXPECT_EQ(r.mapping.node_of(0), s.source);
  EXPECT_EQ(r.mapping.node_of(3), s.source);
}

TEST(ElpcDelay, UnreachableDestinationInfeasible) {
  workload::Scenario s;
  util::Rng rng(5);
  s.pipeline = pipeline::random_pipeline(rng, 3, {});
  s.network.add_node({});
  s.network.add_node({});
  s.network.add_node({});
  s.network.add_link(0, 1, {100.0, 0.0});  // node 2 unreachable
  s.source = 0;
  s.destination = 2;
  const MapResult r = ElpcMapper().min_delay(s.problem());
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.reason.empty());
}

TEST(ElpcDelay, PipelineShorterThanShortestPathInfeasible) {
  // 0 -> 1 -> 2 line, but only 2 modules: module 1 must sit on node 2
  // one hop from module 0 on node 0 — impossible.
  workload::Scenario s;
  s.pipeline = pipeline::Pipeline({{"src", 0.0, 1.0}, {"sink", 0.1, 1.0}});
  s.network.add_node({});
  s.network.add_node({});
  s.network.add_node({});
  s.network.add_link(0, 1, {100.0, 0.0});
  s.network.add_link(1, 2, {100.0, 0.0});
  s.source = 0;
  s.destination = 2;
  EXPECT_FALSE(ElpcMapper().min_delay(s.problem()).feasible);
}

TEST(ElpcDelay, PrefersGroupingOnFastNode) {
  // Two heavy modules and a fast well-connected middle node: the optimal
  // mapping groups both on the fast node (the Fig. 3 behaviour).
  const workload::Scenario s = workload::small_case();
  const MapResult r = ElpcMapper().min_delay(s.problem());
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.mapping.to_string(),
            "M0,M1 -> node0 | M2,M3 -> node4 | M4 -> node5");
}

TEST(ElpcDelay, MatchesExhaustiveOnRandomInstances) {
  // Empirical check of the paper's optimality proof (Section 3.1.1).
  for (std::uint64_t seed = 10; seed < 40; ++seed) {
    util::Rng rng(seed);
    const std::size_t nodes = 4 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    const std::size_t modules =
        3 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    const std::size_t max_links = nodes * (nodes - 1);
    const std::size_t links =
        std::max(nodes, static_cast<std::size_t>(0.6 * max_links));
    const workload::Scenario s =
        random_instance(seed * 7, modules, nodes, links);
    const Problem p = s.problem();
    const MapResult dp = ElpcMapper().min_delay(p);
    const MapResult exact = ExhaustiveMapper().min_delay(p);
    ASSERT_EQ(dp.feasible, exact.feasible) << "seed " << seed;
    if (dp.feasible) {
      EXPECT_NEAR(dp.seconds, exact.seconds, 1e-9 * exact.seconds)
          << "seed " << seed;
    }
  }
}

TEST(ElpcDelay, MldOptionChangesObjectiveConsistently) {
  const workload::Scenario s = random_instance(6, 6, 10, 60);
  const MapResult with =
      ElpcMapper().min_delay(s.problem({.include_link_delay = true}));
  const MapResult without =
      ElpcMapper().min_delay(s.problem({.include_link_delay = false}));
  ASSERT_TRUE(with.feasible);
  ASSERT_TRUE(without.feasible);
  // MLD only adds cost, and the without-MLD optimum lower-bounds the
  // with-MLD optimum.
  EXPECT_LE(without.seconds, with.seconds);
}

TEST(ElpcDelay, MoreBandwidthNeverHurts) {
  // Monotonicity property: scaling every link's bandwidth up by 2x can
  // only lower (or keep) the optimal delay.
  const workload::Scenario s = random_instance(7, 6, 9, 45);
  graph::Network boosted;
  for (graph::NodeId v = 0; v < s.network.node_count(); ++v) {
    boosted.add_node(s.network.node(v));
  }
  for (graph::NodeId v = 0; v < s.network.node_count(); ++v) {
    for (const graph::Edge& e : s.network.out_edges(v)) {
      boosted.add_link(e.from, e.to,
                       {e.attr.bandwidth_mbps * 2.0, e.attr.min_delay_s});
    }
  }
  const MapResult base = ElpcMapper().min_delay(s.problem());
  const MapResult fast = ElpcMapper().min_delay(
      Problem(s.pipeline, boosted, s.source, s.destination));
  ASSERT_TRUE(base.feasible);
  ASSERT_TRUE(fast.feasible);
  EXPECT_LE(fast.seconds, base.seconds + 1e-12);
}

TEST(ElpcDelay, LongPipelineOnTinyNetworkUsesReuse) {
  // 10 modules on 3 nodes: node reuse is the only way.
  const workload::Scenario s = random_instance(8, 10, 3, 6);
  const MapResult r = ElpcMapper().min_delay(s.problem());
  ASSERT_TRUE(r.feasible);
  EXPECT_FALSE(r.mapping.is_one_to_one());
}

class ElpcDelaySweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ElpcDelaySweep, AlwaysFeasibleAndEvaluatorConsistent) {
  const auto [modules, nodes] = GetParam();
  const std::size_t links = std::max(
      nodes, static_cast<std::size_t>(0.5 * nodes * (nodes - 1)));
  const workload::Scenario s =
      random_instance(modules * 100 + nodes, modules, nodes, links);
  const Problem p = s.problem();
  const MapResult r = ElpcMapper().min_delay(p);
  // A mapping exists iff the destination is within modules-1 hops of the
  // source (each module past the first affords at most one hop).
  const auto hops = graph::hops_to_target(s.network, s.destination);
  const bool reachable = hops[s.source] <= modules - 1;
  ASSERT_EQ(r.feasible, reachable);
  if (!reachable) {
    return;
  }
  const mapping::Evaluation e = mapping::evaluate_total_delay(p, r.mapping);
  ASSERT_TRUE(e.feasible);
  EXPECT_NEAR(e.seconds, r.seconds, 1e-12 + 1e-9 * e.seconds);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ElpcDelaySweep,
    ::testing::Combine(::testing::Values(2, 5, 12, 30),
                       ::testing::Values(5, 12, 40)));

}  // namespace
}  // namespace elpc::core
