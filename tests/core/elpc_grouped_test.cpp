#include <gtest/gtest.h>

#include "core/elpc.hpp"
#include "core/elpc_grouped.hpp"
#include "graph/generators.hpp"
#include "mapping/evaluator.hpp"
#include "pipeline/generator.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace elpc::core {
namespace {

using mapping::MapResult;
using mapping::Problem;

workload::Scenario random_instance(std::uint64_t seed, std::size_t modules,
                                   std::size_t nodes, std::size_t links) {
  util::Rng rng(seed);
  workload::Scenario s;
  s.pipeline = pipeline::random_pipeline(rng, modules, {});
  s.network = graph::random_connected_network(rng, nodes, links, {});
  s.source = 0;
  s.destination = nodes - 1;
  return s;
}

pipeline::CostOptions no_mld() { return {.include_link_delay = false}; }

TEST(ElpcGrouped, MinDelayDelegatesToOptimalDp) {
  const workload::Scenario s = random_instance(1, 6, 9, 45);
  const MapResult a = ElpcGroupedMapper().min_delay(s.problem());
  const MapResult b = ElpcMapper().min_delay(s.problem());
  ASSERT_TRUE(a.feasible);
  EXPECT_NEAR(a.seconds, b.seconds, 1e-12);
}

TEST(ElpcGrouped, ResultIsGroupedSimplePath) {
  const workload::Scenario s = random_instance(2, 6, 8, 40);
  const MapResult r = ElpcGroupedMapper().max_frame_rate(s.problem(no_mld()));
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.mapping.has_no_group_reuse());
  EXPECT_TRUE(r.mapping.group_path().is_simple());
}

TEST(ElpcGrouped, ScoredByRelaxedEvaluator) {
  const workload::Scenario s = random_instance(3, 7, 9, 50);
  const Problem p = s.problem(no_mld());
  const MapResult r = ElpcGroupedMapper().max_frame_rate(p);
  ASSERT_TRUE(r.feasible);
  const mapping::Evaluation e =
      mapping::evaluate_bottleneck(p, r.mapping, /*enforce_no_reuse=*/false);
  ASSERT_TRUE(e.feasible);
  EXPECT_NEAR(e.seconds, r.seconds, 1e-12 + 1e-9 * e.seconds);
}

TEST(ElpcGrouped, FeasibleWherePipelineExceedsNodeCount) {
  // 8 modules on 5 nodes: strict no-reuse is impossible, grouping works.
  const workload::Scenario s = random_instance(4, 8, 5, 18);
  const Problem p = s.problem(no_mld());
  EXPECT_FALSE(ElpcMapper().max_frame_rate(p).feasible);
  const MapResult grouped = ElpcGroupedMapper().max_frame_rate(p);
  ASSERT_TRUE(grouped.feasible);
  EXPECT_GT(grouped.frame_rate(), 0.0);
}

TEST(ElpcGrouped, NeverWorseThanStrictHeuristicOnSuiteStyleInstances) {
  // Grouping strictly enlarges the feasible set; the DP should exploit
  // it (or at least match the strict heuristic's solution, which is one
  // of its candidates in spirit).
  std::size_t worse = 0;
  std::size_t comparisons = 0;
  for (std::uint64_t seed = 30; seed < 60; ++seed) {
    const workload::Scenario s = random_instance(seed, 5, 9, 50);
    const Problem p = s.problem(no_mld());
    const MapResult strict = ElpcMapper().max_frame_rate(p);
    const MapResult grouped = ElpcGroupedMapper().max_frame_rate(p);
    if (strict.feasible && grouped.feasible) {
      ++comparisons;
      if (grouped.seconds > strict.seconds * (1.0 + 1e-9)) {
        ++worse;
      }
    }
  }
  ASSERT_GT(comparisons, 20u);
  // Both are heuristics, so allow isolated reversals but no systematic
  // regression.
  EXPECT_LE(worse, comparisons / 10);
}

TEST(ElpcGrouped, SharedNodeBottleneckIsComputeSum) {
  // Hand-built: 2 nodes, 3 modules; modules 1+2 must share a node.
  workload::Scenario s;
  s.pipeline = pipeline::Pipeline(
      {{"src", 0.0, 10.0}, {"a", 0.2, 10.0}, {"b", 0.3, 1.0}});
  s.network.add_node({"n0", 1.0});
  s.network.add_node({"n1", 10.0});
  s.network.add_duplex_link(0, 1, {1000.0, 0.0});
  s.source = 0;
  s.destination = 1;
  const MapResult r = ElpcGroupedMapper().max_frame_rate(s.problem(no_mld()));
  ASSERT_TRUE(r.feasible);
  // Best: group modules 1 and 2 on the fast node 1:
  //   node 1 load = (10*0.2 + 10*0.3)/10 = 0.5; transport 10/1000 = 0.01.
  EXPECT_NEAR(r.seconds, 0.5, 1e-12);
  EXPECT_EQ(r.mapping.assignment(),
            (std::vector<graph::NodeId>{0, 1, 1}));
}

TEST(ElpcGrouped, SourceOnlyPipelineWhenDestinationIsSource) {
  workload::Scenario s;
  s.pipeline = pipeline::Pipeline(
      {{"src", 0.0, 1.0}, {"a", 0.1, 1.0}, {"b", 0.1, 1.0}});
  s.network.add_node({"n0", 2.0});
  s.network.add_node({"n1", 4.0});
  s.network.add_duplex_link(0, 1, {100.0, 0.0});
  s.source = 0;
  s.destination = 0;
  const MapResult r = ElpcGroupedMapper().max_frame_rate(s.problem(no_mld()));
  ASSERT_TRUE(r.feasible);
  // Everything on the source: the only simple "path" starting and ending
  // at node 0.
  EXPECT_EQ(r.mapping.assignment(), (std::vector<graph::NodeId>{0, 0, 0}));
}

}  // namespace
}  // namespace elpc::core
