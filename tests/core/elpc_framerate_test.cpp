#include <gtest/gtest.h>

#include "core/elpc.hpp"
#include "core/exhaustive.hpp"
#include "graph/generators.hpp"
#include "mapping/evaluator.hpp"
#include "pipeline/generator.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/small_case.hpp"

namespace elpc::core {
namespace {

using mapping::MapResult;
using mapping::Problem;

workload::Scenario random_instance(std::uint64_t seed, std::size_t modules,
                                   std::size_t nodes, std::size_t links) {
  util::Rng rng(seed);
  workload::Scenario s;
  s.name = "t" + std::to_string(seed);
  s.pipeline = pipeline::random_pipeline(rng, modules, {});
  s.network = graph::random_connected_network(rng, nodes, links, {});
  s.source = 0;
  s.destination = nodes - 1;
  return s;
}

pipeline::CostOptions no_mld() { return {.include_link_delay = false}; }

TEST(ElpcFrameRate, ResultIsOneToOneSimplePath) {
  const workload::Scenario s = random_instance(1, 5, 9, 45);
  const MapResult r = ElpcMapper().max_frame_rate(s.problem(no_mld()));
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.mapping.is_one_to_one());
  EXPECT_TRUE(r.mapping.group_path().is_simple());
  EXPECT_EQ(r.mapping.group_path().length(), 5u);
}

TEST(ElpcFrameRate, ResultPassesStrictEvaluator) {
  const workload::Scenario s = random_instance(2, 6, 10, 60);
  const Problem p = s.problem(no_mld());
  const MapResult r = ElpcMapper().max_frame_rate(p);
  ASSERT_TRUE(r.feasible);
  const mapping::Evaluation e =
      mapping::evaluate_bottleneck(p, r.mapping, /*enforce_no_reuse=*/true);
  ASSERT_TRUE(e.feasible);
  EXPECT_NEAR(e.seconds, r.seconds, 1e-12 + 1e-9 * e.seconds);
}

TEST(ElpcFrameRate, PipelineLongerThanNodesInfeasible) {
  const workload::Scenario s = random_instance(3, 8, 5, 15);
  const MapResult r = ElpcMapper().max_frame_rate(s.problem(no_mld()));
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.reason.find("longer"), std::string::npos);
}

TEST(ElpcFrameRate, SourceEqualsDestinationInfeasible) {
  workload::Scenario s = random_instance(4, 4, 8, 40);
  s.destination = s.source;
  EXPECT_FALSE(ElpcMapper().max_frame_rate(s.problem(no_mld())).feasible);
}

TEST(ElpcFrameRate, NeverBeatsExactOptimum) {
  // Sanity: the heuristic's bottleneck can never be smaller than the
  // exhaustive optimum (which would indicate an evaluator bug).
  for (std::uint64_t seed = 20; seed < 45; ++seed) {
    util::Rng rng(seed);
    const std::size_t nodes =
        5 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    const std::size_t modules =
        3 + static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(std::min<std::size_t>(
                       3, nodes - 3))));
    const std::size_t links =
        static_cast<std::size_t>(0.7 * nodes * (nodes - 1));
    const workload::Scenario s =
        random_instance(seed * 13, modules, nodes, std::max(nodes, links));
    const Problem p = s.problem(no_mld());
    const MapResult heur = ElpcMapper().max_frame_rate(p);
    const MapResult exact = ExhaustiveMapper().max_frame_rate(p);
    if (exact.feasible && heur.feasible) {
      EXPECT_GE(heur.seconds, exact.seconds * (1.0 - 1e-9))
          << "seed " << seed;
    }
    if (heur.feasible) {
      EXPECT_TRUE(exact.feasible)
          << "heuristic found a path exhaustive search missed";
    }
  }
}

TEST(ElpcFrameRate, FindsExactOptimumOnMostSmallInstances) {
  // The paper claims heuristic misses are "extremely rare".
  std::size_t matched = 0;
  std::size_t comparable = 0;
  for (std::uint64_t seed = 100; seed < 160; ++seed) {
    const workload::Scenario s = random_instance(seed, 4, 7, 29);
    const Problem p = s.problem(no_mld());
    const MapResult heur = ElpcMapper().max_frame_rate(p);
    const MapResult exact = ExhaustiveMapper().max_frame_rate(p);
    if (exact.feasible && heur.feasible) {
      ++comparable;
      if (heur.seconds <= exact.seconds * (1.0 + 1e-9)) {
        ++matched;
      }
    }
  }
  ASSERT_GT(comparable, 40u);
  EXPECT_GE(static_cast<double>(matched) / static_cast<double>(comparable),
            0.9);
}

TEST(ElpcFrameRate, SmallCaseMatchesExactOptimum) {
  const workload::Scenario s = workload::small_case();
  const Problem p = s.problem(no_mld());
  const MapResult heur = ElpcMapper().max_frame_rate(p);
  const MapResult exact = ExhaustiveMapper().max_frame_rate(p);
  ASSERT_TRUE(heur.feasible);
  ASSERT_TRUE(exact.feasible);
  EXPECT_NEAR(heur.seconds, exact.seconds, 1e-12);
}

TEST(ElpcFrameRate, IntermediateModulesAvoidDestination) {
  // Regression test for the dead-end bug: partial paths that consume the
  // destination mid-way can never host the pinned sink module.
  for (std::uint64_t seed = 300; seed < 320; ++seed) {
    const workload::Scenario s = random_instance(seed, 5, 8, 40);
    const MapResult r = ElpcMapper().max_frame_rate(s.problem(no_mld()));
    if (!r.feasible) {
      continue;
    }
    for (std::size_t j = 1; j + 1 < 5; ++j) {
      EXPECT_NE(r.mapping.node_of(j), s.destination);
    }
  }
}

TEST(ElpcFrameRate, BeamWidthOneReproducesBareHeuristic) {
  ElpcOptions bare;
  bare.framerate_beam_width = 1;
  bare.framerate_sum_tiebreak = false;
  bare.framerate_local_search = false;
  const ElpcMapper plain(bare);
  const ElpcMapper full;
  std::size_t improved = 0;
  for (std::uint64_t seed = 400; seed < 430; ++seed) {
    const workload::Scenario s = random_instance(seed, 6, 12, 90);
    const Problem p = s.problem(no_mld());
    const MapResult a = plain.max_frame_rate(p);
    const MapResult b = full.max_frame_rate(p);
    if (a.feasible && b.feasible) {
      // The refined configuration never does worse.
      EXPECT_LE(b.seconds, a.seconds * (1.0 + 1e-9)) << "seed " << seed;
      if (b.seconds < a.seconds * (1.0 - 1e-9)) {
        ++improved;
      }
    }
    if (a.feasible) {
      EXPECT_TRUE(b.feasible) << "refinements must not lose feasibility";
    }
  }
  // The refinements exist because they help on some instances.
  EXPECT_GT(improved, 0u);
}

TEST(ElpcFrameRate, DisablingVisitedCheckCanProduceInvalidPaths) {
  // Ablation A3: without the visited check, the DP may propose
  // node-repeating paths that the strict evaluator rejects.
  ElpcOptions options;
  options.framerate_visited_check = false;
  options.framerate_local_search = false;
  const ElpcMapper unchecked(options);
  std::size_t invalid = 0;
  for (std::uint64_t seed = 500; seed < 540; ++seed) {
    const workload::Scenario s = random_instance(seed, 6, 8, 42);
    const Problem p = s.problem(no_mld());
    const MapResult r = unchecked.max_frame_rate(p);
    if (r.feasible && !r.mapping.is_one_to_one()) {
      ++invalid;
    }
  }
  EXPECT_GT(invalid, 0u)
      << "with the check disabled some instance should exhibit reuse";
}

TEST(ElpcFrameRate, DenseNetworkNearCapacityFeasible) {
  // n modules on exactly n nodes: a Hamiltonian-path-like instance; on a
  // complete digraph it is always feasible.
  util::Rng rng(77);
  workload::Scenario s;
  s.pipeline = pipeline::random_pipeline(rng, 7, {});
  s.network = graph::complete_network(rng, 7, {});
  s.source = 0;
  s.destination = 6;
  const MapResult r = ElpcMapper().max_frame_rate(s.problem(no_mld()));
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.mapping.is_one_to_one());
}

}  // namespace
}  // namespace elpc::core
