// Engine-side job deadlines (SolveJob::deadline_ms) and pinned-revision
// leases (NetworkSession lease_ms / extend_lease): an over-budget solve
// must stop with kTimedOutError, and a pin outliving its lease must be
// force-released so a hung solve cannot hold cache entries forever.

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/elpc.hpp"
#include "graph/generators.hpp"
#include "pipeline/generator.hpp"
#include "service/batch_engine.hpp"
#include "service/network_session.hpp"
#include "service/serialize.hpp"
#include "util/rng.hpp"

namespace elpc::service {
namespace {

graph::Network make_network(std::uint64_t seed, std::size_t nodes,
                            std::size_t links) {
  util::Rng rng(seed);
  return graph::random_connected_network(rng, nodes, links,
                                         graph::AttributeRanges{});
}

SolveJob make_job(const std::string& id, std::uint64_t pseed,
                  Objective objective) {
  util::Rng rng(pseed);
  SolveJob job;
  job.id = id;
  job.network = "net";
  job.pipeline = pipeline::random_pipeline(rng, 4, {});
  job.source = 0;
  job.destination = 9;
  job.objective = objective;
  job.cost = default_cost(objective);
  return job;
}

/// Factory that sleeps before handing back the stock engine mapper: the
/// job then burns its budget before the first DP column, so the
/// per-column probe fires deterministically.
BatchEngineOptions stalling_factory(std::chrono::milliseconds stall) {
  BatchEngineOptions options;
  options.factory = [stall](const SolveJob&, const MapperContext& ctx) {
    std::this_thread::sleep_for(stall);
    return make_engine_elpc(ctx);
  };
  return options;
}

TEST(BatchEngine, DeadlineExceededMidSolveReportsTimedOut) {
  BatchEngine engine(stalling_factory(std::chrono::milliseconds(100)));
  engine.register_network("net", make_network(3, 10, 50));

  std::vector<SolveJob> jobs = {
      make_job("over", 50, Objective::kMaxFrameRate)};
  jobs[0].deadline_ms = 5;
  const std::vector<SolveResult> results = engine.solve(jobs);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].error, kTimedOutError);
  EXPECT_FALSE(results[0].result.feasible);
}

TEST(BatchEngine, DeadlineJobsNeverPerturbOnTimeResults) {
  // A generous deadline (and a zero one) must leave results bit-identical
  // to a plain solve: the deadline plumbing is pure control flow.
  BatchEngine plain;
  plain.register_network("net", make_network(3, 10, 50));
  std::vector<SolveJob> jobs = {
      make_job("a", 50, Objective::kMinDelay),
      make_job("b", 51, Objective::kMaxFrameRate)};
  const std::vector<SolveResult> expected = plain.solve(jobs);

  BatchEngine engine;
  engine.register_network("net", make_network(3, 10, 50));
  jobs[0].deadline_ms = 60000;
  jobs[1].deadline_ms = 0;
  const std::vector<SolveResult> results = engine.solve(jobs);
  ASSERT_EQ(results.size(), 2u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].error.empty()) << results[i].error;
    EXPECT_EQ(results[i].result.seconds, expected[i].result.seconds);
    EXPECT_EQ(results[i].result.mapping, expected[i].result.mapping);
  }
}

TEST(BatchEngine, TimedOutSubscriptionIsNotRetained) {
  // A job that timed out never ran to completion; retaining it as a
  // subscription would re-solve work the caller already wrote off.
  BatchEngine engine(stalling_factory(std::chrono::milliseconds(100)));
  engine.register_network("net", make_network(3, 10, 50));
  std::vector<SolveJob> jobs = {
      make_job("sub", 52, Objective::kMaxFrameRate)};
  jobs[0].resolve_on_update = true;
  jobs[0].deadline_ms = 5;
  const std::vector<SolveResult> results = engine.solve(jobs);
  ASSERT_EQ(results[0].error, kTimedOutError);
  EXPECT_EQ(engine.subscription_count(), 0u);
}

TEST(NetworkSession, LeaseExpiryForceReleasesPinnedRevision) {
  graph::Network net = make_network(3, 10, 50);
  const graph::Edge edge = net.out_edges(0).front();
  NetworkSession session("net", std::move(net),
                         /*history_budget_bytes=*/0, /*lease_ms=*/50);

  // Hold revision 0 like an in-flight solve would, then supersede it.
  const NetworkSnapshot held = session.snapshot();
  const std::vector<graph::LinkUpdate> delta = {
      graph::LinkUpdate{edge.from, edge.to, edge.attr}};
  session.apply_link_updates(delta);

  SessionCacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.pinned_revisions, 1u);
  EXPECT_GT(stats.pinned_bytes, 0u);
  EXPECT_EQ(stats.lease_expirations, 0u);

  // Past the lease the sweep drops the entry even though we still hold
  // the snapshot: the session stops accounting for the leak, and the
  // holder keeps its own reference alive privately.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  stats = session.cache_stats();
  EXPECT_EQ(stats.pinned_revisions, 0u);
  EXPECT_EQ(stats.pinned_bytes, 0u);
  EXPECT_EQ(stats.lease_expirations, 1u);
  EXPECT_EQ(session.revision_snapshot(0), nullptr);
  EXPECT_GT(held->node_count(), 0u);  // the private reference survives
}

TEST(NetworkSession, ExtendLeaseOnCurrentRevisionSurvivesSupersession) {
  graph::Network net = make_network(3, 10, 50);
  const graph::Edge edge = net.out_edges(0).front();
  NetworkSession session("net", std::move(net),
                         /*history_budget_bytes=*/0, /*lease_ms=*/10);

  // Extend revision 0's lease while it is still current (what the
  // engine does for a deadline job at solve entry)...
  session.extend_lease(session.revision(), /*extra_ms=*/60000);
  const NetworkSnapshot held = session.snapshot();
  const std::vector<graph::LinkUpdate> delta = {
      graph::LinkUpdate{edge.from, edge.to, edge.attr}};
  session.apply_link_updates(delta);

  // ...so the pin survives well past the 10 ms base lease.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const SessionCacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.pinned_revisions, 1u);
  EXPECT_EQ(stats.lease_expirations, 0u);
}

TEST(NetworkSession, LeasesOffKeepsPinsForever) {
  graph::Network net = make_network(3, 10, 50);
  const graph::Edge edge = net.out_edges(0).front();
  NetworkSession session("net", std::move(net));  // lease_ms = 0

  // extend_lease is a documented no-op with leases off (and for unknown
  // revisions either way).
  session.extend_lease(session.revision(), 1);
  session.extend_lease(999, 1);

  const NetworkSnapshot held = session.snapshot();
  const std::vector<graph::LinkUpdate> delta = {
      graph::LinkUpdate{edge.from, edge.to, edge.attr}};
  session.apply_link_updates(delta);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const SessionCacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.pinned_revisions, 1u);  // pre-lease behaviour: held
  EXPECT_EQ(stats.lease_expirations, 0u);
}

TEST(BatchSerialize, DeadlineRoundTripsAndNegativeRejected) {
  SolveJob job = make_job("d", 60, Objective::kMinDelay);
  job.deadline_ms = 1234;
  const SolveJob back = job_from_json(to_json(job));
  EXPECT_EQ(back.deadline_ms, 1234);

  // Absent on the wire (and omitted when 0): the default is "no
  // deadline", keeping old clients byte-compatible.
  job.deadline_ms = 0;
  util::Json doc = to_json(job);
  EXPECT_FALSE(doc.as_object().count("deadline_ms"));
  EXPECT_EQ(job_from_json(doc).deadline_ms, 0);

  doc.set("deadline_ms", -5);
  EXPECT_THROW((void)job_from_json(doc), std::invalid_argument);
}

}  // namespace
}  // namespace elpc::service
