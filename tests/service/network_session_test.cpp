#include "service/network_session.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "netmeasure/netmeasure.hpp"
#include "util/rng.hpp"

namespace elpc::service {
namespace {

using graph::LinkAttr;
using graph::LinkUpdate;
using graph::Network;

Network small_network() {
  util::Rng rng(7);
  return graph::random_connected_network(rng, 10, 50,
                                         graph::AttributeRanges{});
}

TEST(NetworkSession, RegistersAndFinalizesOnce) {
  NetworkSession session("net", small_network());
  EXPECT_EQ(session.id(), "net");
  EXPECT_EQ(session.revision(), 0u);
  const NetworkSnapshot snap = session.snapshot();
  EXPECT_TRUE(snap->finalized());
  EXPECT_EQ(session.finalize_builds(), 1u);
}

TEST(NetworkSession, DeltasPublishNewRevisionWithoutRebuilding) {
  NetworkSession session("net", small_network());
  const NetworkSnapshot before = session.snapshot();
  const graph::Edge edge = before->out_edges(0).front();

  const std::vector<LinkUpdate> updates = {
      LinkUpdate{edge.from, edge.to, LinkAttr{edge.attr.bandwidth_mbps * 2.0,
                                              edge.attr.min_delay_s}}};
  session.apply_link_updates(updates);

  EXPECT_EQ(session.revision(), 1u);
  const NetworkSnapshot after = session.snapshot();
  EXPECT_NE(before.get(), after.get());  // copy-on-write, not in-place
  // The already-published snapshot is immutable...
  EXPECT_DOUBLE_EQ(before->link(edge.from, edge.to).bandwidth_mbps,
                   edge.attr.bandwidth_mbps);
  // ...the new one carries the delta, still without any CSR rebuild.
  EXPECT_DOUBLE_EQ(after->link(edge.from, edge.to).bandwidth_mbps,
                   edge.attr.bandwidth_mbps * 2.0);
  EXPECT_EQ(session.finalize_builds(), 1u);
  after->validate();
}

TEST(NetworkSession, FailedDeltaPublishesNothing) {
  NetworkSession session("net", small_network());
  const std::vector<LinkUpdate> bad = {
      LinkUpdate{0, 0, LinkAttr{1.0, 0.0}}};  // self-loop: no such link
  EXPECT_THROW(session.apply_link_updates(bad), std::out_of_range);
  EXPECT_EQ(session.revision(), 0u);
}

TEST(NetworkSession, ConsumesNetmeasureDeltas) {
  Network truth = small_network();
  NetworkSession session("net", truth);

  util::Rng rng(11);
  netmeasure::ProbePlan plan;
  plan.relative_noise = 0.0;  // noiseless probes recover the truth
  const std::vector<LinkUpdate> updates =
      netmeasure::measure_link_updates(rng, truth, plan);
  ASSERT_EQ(updates.size(), truth.link_count());
  session.apply_link_updates(updates);

  const NetworkSnapshot snap = session.snapshot();
  for (const LinkUpdate& u : updates) {
    EXPECT_NEAR(snap->link(u.from, u.to).bandwidth_mbps,
                truth.link(u.from, u.to).bandwidth_mbps, 1e-6);
  }
}

TEST(NetworkSession, ConcurrentReadersSurviveDeltaStorm) {
  NetworkSession session("net", small_network());
  const graph::Edge edge = session.snapshot()->out_edges(0).front();

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        // Hold a snapshot across a full sweep, as a solve shard would.
        const NetworkSnapshot snap = session.snapshot();
        double sum = 0.0;
        for (graph::NodeId v = 0; v < snap->node_count(); ++v) {
          for (const graph::Edge& e : snap->out_edges(v)) {
            sum += e.attr.bandwidth_mbps;
          }
        }
        ASSERT_GT(sum, 0.0);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 1; i <= 200; ++i) {
    const std::vector<LinkUpdate> updates = {LinkUpdate{
        edge.from, edge.to, LinkAttr{static_cast<double>(i), 0.001}}};
    session.apply_link_updates(updates);
  }
  // On a single-CPU box the delta loop can outrun reader scheduling;
  // insist every reader completed at least one full sweep (so reads
  // genuinely overlapped or followed the storm) before stopping them.
  while (reads.load(std::memory_order_relaxed) < 4) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(session.revision(), 200u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_DOUBLE_EQ(
      session.snapshot()->link(edge.from, edge.to).bandwidth_mbps, 200.0);
}

std::vector<LinkUpdate> one_delta(const NetworkSnapshot& snap, double bw) {
  const graph::Edge edge = snap->out_edges(0).front();
  return {LinkUpdate{edge.from, edge.to, LinkAttr{bw, edge.attr.min_delay_s}}};
}

TEST(SessionCache, DefaultBudgetRetainsNoUnpinnedHistory) {
  NetworkSession session("net", small_network());  // budget 0
  for (int i = 1; i <= 10; ++i) {
    session.apply_link_updates(
        one_delta(session.snapshot(), static_cast<double>(i)));
  }
  const SessionCacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.cached_revisions, 0u);
  EXPECT_EQ(stats.cached_bytes, 0u);
  EXPECT_EQ(stats.evictions, 10u);
  EXPECT_EQ(session.revision_snapshot(3), nullptr);
}

TEST(SessionCache, RevisionCountBoundedUnderDeltaStreamWithEvictions) {
  const std::size_t one_revision = small_network().approx_bytes();
  ASSERT_GT(one_revision, 0u);
  // Room for roughly three retained revisions.
  NetworkSession session("net", small_network(), 3 * one_revision);
  for (int i = 1; i <= 100; ++i) {
    session.apply_link_updates(
        one_delta(session.snapshot(), static_cast<double>(i)));
  }
  const SessionCacheStats stats = session.cache_stats();
  EXPECT_EQ(session.revision(), 100u);
  EXPECT_GE(stats.cached_revisions, 1u);
  // Bounded by the byte budget (a clone's footprint can undercut the
  // generator-built original's, so bound revisions loosely), not 100.
  EXPECT_LE(stats.cached_revisions, 6u);
  EXPECT_LE(stats.cached_bytes, 3 * one_revision);
  EXPECT_GE(stats.evictions, 90u);
  // LRU keeps the most recent superseded revisions.
  EXPECT_NE(session.revision_snapshot(99), nullptr);
  EXPECT_EQ(session.revision_snapshot(1), nullptr);
  // The current revision is always addressable, budget or not.
  EXPECT_NE(session.revision_snapshot(100), nullptr);
}

TEST(SessionCache, PinnedRevisionSurvivesEvictionUntilReleased) {
  NetworkSession session("net", small_network());  // budget 0: evict eagerly
  NetworkSnapshot in_flight = session.snapshot();  // a solve holds rev 0
  for (int i = 1; i <= 20; ++i) {
    session.apply_link_updates(
        one_delta(session.snapshot(), static_cast<double>(i)));
  }
  // Revision 0 is pinned by the in-flight reference: still addressable
  // while every unpinned superseded revision was dropped.
  EXPECT_EQ(session.cache_stats().cached_revisions, 1u);
  ASSERT_NE(session.revision_snapshot(0), nullptr);
  EXPECT_EQ(session.revision_snapshot(0).get(), in_flight.get());
  EXPECT_EQ(session.revision_snapshot(10), nullptr);

  in_flight.reset();  // the solve finishes
  EXPECT_EQ(session.cache_stats().cached_revisions, 0u);
  EXPECT_EQ(session.revision_snapshot(0), nullptr);
}

TEST(SessionCache, PinnedRevisionDiagnosticCountsOutsideReferences) {
  NetworkSession session("net", small_network(), 1 << 20);
  NetworkSnapshot held = session.snapshot();  // will pin revision 0
  for (int i = 1; i <= 3; ++i) {
    session.apply_link_updates(
        one_delta(session.snapshot(), static_cast<double>(i)));
  }
  const SessionCacheStats pinned = session.cache_stats();
  EXPECT_EQ(pinned.cached_revisions, 3u);
  EXPECT_EQ(pinned.pinned_revisions, 1u);  // only revision 0 is held
  EXPECT_GT(pinned.pinned_bytes, 0u);
  held.reset();
  const SessionCacheStats released = session.cache_stats();
  EXPECT_EQ(released.pinned_revisions, 0u);
  EXPECT_EQ(released.pinned_bytes, 0u);
}

TEST(SessionCache, CheckpointsShareTheBudgetAndEvictLru) {
  NetworkSession session("net", small_network());  // budget 0
  {
    // Held entry: pinned, survives the sweep even at budget 0.
    const NetworkSession::CheckpointEntryPtr entry =
        session.checkpoint_entry("job");
    entry->state.setup(core::IncrementalCheckpoint::Fingerprint{
        .modules = 4, .nodes = 10, .beam = 4, .words = 1});
    session.note_checkpoint_update("job", entry->state.approx_bytes());
    const SessionCacheStats stats = session.cache_stats();
    EXPECT_EQ(stats.checkpoints, 1u);
    EXPECT_GT(stats.checkpoint_bytes, 0u);
    // Re-requesting the same key returns the same entry, not a fresh one.
    EXPECT_EQ(session.checkpoint_entry("job").get(), entry.get());
  }
  // Released: the next sweep reclaims it.
  const SessionCacheStats swept = session.cache_stats();
  EXPECT_EQ(swept.checkpoints, 0u);
  EXPECT_EQ(swept.checkpoint_evictions, 1u);
}

TEST(SessionCache, PinnedRevisionsNeverYieldToCheckpointPressure) {
  // Budget sized for roughly one revision; a pinned revision plus a
  // checkpoint overflow it.  The sweep may only take the checkpoint —
  // pinned revisions are exempt no matter who else wants the bytes.
  const std::size_t one_revision = small_network().approx_bytes();
  NetworkSession session("net", small_network(), one_revision);
  NetworkSnapshot held = session.snapshot();  // pins revision 0
  for (int i = 1; i <= 2; ++i) {
    session.apply_link_updates(
        one_delta(session.snapshot(), static_cast<double>(i)));
  }
  {
    const NetworkSession::CheckpointEntryPtr entry =
        session.checkpoint_entry("job");
    // Size the checkpoint past the whole budget.
    entry->state.setup(core::IncrementalCheckpoint::Fingerprint{
        .modules = 64, .nodes = 256, .beam = 4, .words = 4});
    session.note_checkpoint_update("job", entry->state.approx_bytes());
  }
  const SessionCacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.checkpoints, 0u);  // the oversized checkpoint went
  EXPECT_EQ(stats.checkpoint_evictions, 1u);
  EXPECT_EQ(stats.pinned_revisions, 1u);
  ASSERT_NE(session.revision_snapshot(0), nullptr);  // pinned: retained
  EXPECT_EQ(session.revision_snapshot(0).get(), held.get());
}

}  // namespace
}  // namespace elpc::service
