// Engine-level incremental re-solves: an engine with
// BatchEngineOptions::incremental must serve byte-identical results to
// a plain engine across arbitrary delta sequences (the serialized
// canonical form, same discipline as the shard-count and kernel parity
// pins), reuse checkpoints when it can, and degrade to full solves —
// never wrong answers — when the session cache evicts them.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "pipeline/generator.hpp"
#include "service/batch_engine.hpp"
#include "service/serialize.hpp"
#include "util/rng.hpp"

namespace elpc::service {
namespace {

using graph::LinkAttr;
using graph::LinkUpdate;
using graph::Network;
using graph::NodeId;

Network make_network(std::uint64_t seed, std::size_t nodes,
                     std::size_t links) {
  util::Rng rng(seed);
  return graph::random_connected_network(rng, nodes, links,
                                         graph::AttributeRanges{});
}

pipeline::Pipeline make_pipeline(std::uint64_t seed, std::size_t modules) {
  util::Rng rng(seed);
  return pipeline::random_pipeline(rng, modules, pipeline::PipelineRanges{});
}

/// Three subscribed frame-rate jobs plus one subscribed delay job (the
/// incremental path only serves the former; mixing pins that the delta
/// flow keeps working for the rest).
std::vector<SolveJob> subscription_jobs() {
  std::vector<SolveJob> jobs;
  std::size_t n = 0;
  for (const auto& [pseed, src, dst] :
       {std::tuple<std::uint64_t, NodeId, NodeId>{61, 0, 11},
        {62, 3, 8},
        {63, 1, 10}}) {
    SolveJob job;
    job.id = "sub" + std::to_string(n++);
    job.network = "net";
    job.pipeline = make_pipeline(pseed, 5);
    job.source = src;
    job.destination = dst;
    job.objective = Objective::kMaxFrameRate;
    job.cost = default_cost(job.objective);
    job.resolve_on_update = true;
    jobs.push_back(std::move(job));
  }
  SolveJob delay = jobs.front();
  delay.id = "sub-delay";
  delay.objective = Objective::kMinDelay;
  delay.cost = default_cost(delay.objective);
  jobs.push_back(std::move(delay));
  return jobs;
}

std::vector<LinkUpdate> random_updates(util::Rng& rng, const Network& net,
                                       std::size_t max_links) {
  const std::size_t count = 1 + rng.index(max_links);
  std::vector<LinkUpdate> updates;
  for (std::size_t i = 0; i < count; ++i) {
    NodeId from = rng.index(net.node_count());
    while (net.out_degree(from) == 0) {
      from = rng.index(net.node_count());
    }
    const graph::Edge edge =
        net.out_edges(from)[rng.index(net.out_degree(from))];
    updates.push_back(LinkUpdate{
        edge.from, edge.to,
        LinkAttr{edge.attr.bandwidth_mbps * rng.uniform_real(0.3, 3.0),
                 edge.attr.min_delay_s * rng.uniform_real(0.5, 2.0)}});
  }
  return updates;
}

TEST(IncrementalEngine, ResolvesByteIdenticalToPlainEngineAcrossRounds) {
  BatchEngineOptions incremental_options;
  incremental_options.incremental = true;
  BatchEngine incremental(incremental_options);
  BatchEngine plain;
  incremental.register_network("net", make_network(5, 12, 70));
  plain.register_network("net", make_network(5, 12, 70));

  const std::vector<SolveJob> jobs = subscription_jobs();
  EXPECT_EQ(results_to_json(incremental.solve(jobs)).dump(2),
            results_to_json(plain.solve(jobs)).dump(2));

  util::Rng rng(99);
  const Network reference = make_network(5, 12, 70);
  for (int round = 0; round < 10; ++round) {
    const std::vector<LinkUpdate> updates =
        random_updates(rng, reference, 2);
    const std::string inc_doc =
        results_to_json(incremental.apply_link_updates("net", updates))
            .dump(2);
    const std::string plain_doc =
        results_to_json(plain.apply_link_updates("net", updates)).dump(2);
    EXPECT_EQ(inc_doc, plain_doc) << "round " << round;
  }

  const EngineStats stats = incremental.stats();
  // Every frame-rate re-solve after the captures should have reused.
  EXPECT_GT(stats.incremental_hits, 0u);
  EXPECT_GT(stats.incremental_columns_reused, 0u);
  EXPECT_GT(stats.checkpoints, 0u);
  EXPECT_GT(stats.checkpoint_bytes, 0u);
  // The plain engine never touched the incremental machinery.
  const EngineStats plain_stats = plain.stats();
  EXPECT_EQ(plain_stats.incremental_hits, 0u);
  EXPECT_EQ(plain_stats.incremental_misses, 0u);
  EXPECT_EQ(plain_stats.checkpoints, 0u);
}

TEST(IncrementalEngine, SolveRepeatedOnSameRevisionReplaysForFree) {
  BatchEngineOptions options;
  options.incremental = true;
  BatchEngine engine(options);
  engine.register_network("net", make_network(7, 12, 70));
  std::vector<SolveJob> jobs = subscription_jobs();
  jobs.resize(1);
  (void)engine.solve(jobs);  // captures
  (void)engine.solve(jobs);  // same revision: empty-delta replay
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.incremental_hits, 1u);
  EXPECT_EQ(stats.incremental_misses, 1u);  // the initial capture
}

TEST(IncrementalEngine, EvictedCheckpointFallsBackToFullSolve) {
  // A 1-byte budget (explicit, so the incremental default is not
  // applied) evicts every checkpoint at the first sweep after its solve
  // releases it: each re-solve is a miss, yet answers stay identical to
  // a plain engine's.
  BatchEngineOptions options;
  options.incremental = true;
  options.session_history_bytes = 1;
  BatchEngine engine(options);
  BatchEngine plain;
  engine.register_network("net", make_network(9, 12, 70));
  plain.register_network("net", make_network(9, 12, 70));

  std::vector<SolveJob> jobs = subscription_jobs();
  jobs.resize(1);
  EXPECT_EQ(results_to_json(engine.solve(jobs)).dump(2),
            results_to_json(plain.solve(jobs)).dump(2));

  util::Rng rng(17);
  const Network reference = make_network(9, 12, 70);
  for (int round = 0; round < 4; ++round) {
    const std::vector<LinkUpdate> updates =
        random_updates(rng, reference, 1);
    EXPECT_EQ(
        results_to_json(engine.apply_link_updates("net", updates)).dump(2),
        results_to_json(plain.apply_link_updates("net", updates)).dump(2))
        << "round " << round;
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.incremental_hits, 0u);
  EXPECT_EQ(stats.incremental_misses, 5u);
  EXPECT_GT(stats.checkpoint_evictions, 0u);
}

TEST(IncrementalEngine, UnsubscribingDropsTheCheckpoint) {
  BatchEngineOptions options;
  options.incremental = true;
  BatchEngine engine(options);
  engine.register_network("net", make_network(11, 12, 70));
  std::vector<SolveJob> jobs = subscription_jobs();
  jobs.resize(1);
  (void)engine.solve(jobs);
  EXPECT_EQ(engine.stats().checkpoints, 1u);

  jobs[0].resolve_on_update = false;
  (void)engine.solve(jobs);
  EXPECT_EQ(engine.subscription_count(), 0u);
  EXPECT_EQ(engine.stats().checkpoints, 0u);
}

TEST(IncrementalEngine, PinnedRevisionDiagnosticTracksSubscriptions) {
  BatchEngineOptions options;
  options.incremental = true;
  BatchEngine engine(options);
  engine.register_network("net", make_network(13, 12, 70));
  std::vector<SolveJob> jobs = subscription_jobs();
  jobs.resize(1);
  (void)engine.solve(jobs);
  EXPECT_EQ(engine.stats().pinned_revisions, 0u);  // nothing superseded

  // A delta supersedes revision 0; the subscription immediately
  // re-pins to revision 1, so steady state stays at zero pinned
  // SUPERSEDED revisions...
  const Network reference = make_network(13, 12, 70);
  const graph::Edge edge = reference.out_edges(0).front();
  const std::vector<LinkUpdate> updates = {LinkUpdate{
      edge.from, edge.to,
      LinkAttr{edge.attr.bandwidth_mbps * 0.5, edge.attr.min_delay_s}}};
  (void)engine.apply_link_updates("net", updates);
  EXPECT_EQ(engine.stats().pinned_revisions, 0u);

  // ...until someone holds a superseded snapshot (what a hung solve
  // amounts to): the diagnostic must surface exactly that pin.
  const NetworkSnapshot held = engine.session("net").snapshot();
  const std::vector<LinkUpdate> again = {LinkUpdate{
      edge.from, edge.to,
      LinkAttr{edge.attr.bandwidth_mbps * 0.25, edge.attr.min_delay_s}}};
  (void)engine.apply_link_updates("net", again);
  const EngineStats pinned = engine.stats();
  EXPECT_EQ(pinned.pinned_revisions, 1u);
  EXPECT_GT(pinned.pinned_bytes, 0u);
}

}  // namespace
}  // namespace elpc::service
