#include "service/batch_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/elpc.hpp"
#include "graph/generators.hpp"
#include "pipeline/generator.hpp"
#include "service/serialize.hpp"
#include "util/rng.hpp"

namespace elpc::service {
namespace {

graph::Network make_network(std::uint64_t seed, std::size_t nodes,
                            std::size_t links) {
  util::Rng rng(seed);
  return graph::random_connected_network(rng, nodes, links,
                                         graph::AttributeRanges{});
}

pipeline::Pipeline make_pipeline(std::uint64_t seed, std::size_t modules) {
  util::Rng rng(seed);
  return pipeline::random_pipeline(rng, modules,
                                   pipeline::PipelineRanges{});
}

/// Twelve ELPC jobs over one 12-node network: both objectives, three
/// pipelines, two endpoint pairs.
std::vector<SolveJob> shared_network_jobs() {
  std::vector<SolveJob> jobs;
  std::size_t n = 0;
  for (std::uint64_t pseed : {21u, 22u, 23u}) {
    for (const auto& [src, dst] : {std::pair<std::size_t, std::size_t>{0, 11},
                                   {3, 8}}) {
      for (const Objective objective :
           {Objective::kMinDelay, Objective::kMaxFrameRate}) {
        SolveJob job;
        job.id = "job" + std::to_string(n++);
        job.network = "shared";
        job.pipeline = make_pipeline(pseed, 5);
        job.source = src;
        job.destination = dst;
        job.objective = objective;
        job.cost = default_cost(objective);
        jobs.push_back(std::move(job));
      }
    }
  }
  return jobs;
}

TEST(BatchEngine, BatchOverOneNetworkFinalizesExactlyOnce) {
  BatchEngine engine;
  engine.register_network("shared", make_network(5, 12, 70));

  const std::vector<SolveJob> jobs = shared_network_jobs();
  ASSERT_GE(jobs.size(), 8u);
  const std::vector<SolveResult> results = engine.solve(jobs);

  ASSERT_EQ(results.size(), jobs.size());
  for (const SolveResult& r : results) {
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_TRUE(r.result.feasible) << r.result.reason;
  }
  // The acceptance pin: >= 8 jobs sharing one network, one CSR build.
  EXPECT_EQ(engine.session("shared").finalize_builds(), 1u);
}

TEST(BatchEngine, ResultsBitIdenticalToDirectMapperCalls) {
  BatchEngine engine;
  graph::Network net = make_network(5, 12, 70);
  const graph::Network direct_net = net;  // independent copy
  engine.register_network("shared", std::move(net));

  const std::vector<SolveJob> jobs = shared_network_jobs();
  const std::vector<SolveResult> results = engine.solve(jobs);

  const core::ElpcMapper direct;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const mapping::Problem problem(jobs[i].pipeline, direct_net,
                                   jobs[i].source, jobs[i].destination,
                                   jobs[i].cost);
    const mapping::MapResult expected =
        jobs[i].objective == Objective::kMaxFrameRate
            ? direct.max_frame_rate(problem)
            : direct.min_delay(problem);
    ASSERT_EQ(results[i].result.feasible, expected.feasible);
    // Bit-identical, not approximately equal: the engine runs the same
    // kernels on the same inputs, sharding must not perturb them.
    EXPECT_EQ(results[i].result.seconds, expected.seconds) << jobs[i].id;
    EXPECT_EQ(results[i].result.mapping, expected.mapping) << jobs[i].id;
  }
}

TEST(BatchEngine, CanonicalJsonByteIdenticalAcrossShardCounts) {
  const std::vector<SolveJob> jobs = shared_network_jobs();

  std::string serial_doc;
  std::string sharded_doc;
  {
    BatchEngineOptions options;
    options.threads = 1;
    options.shards = 1;
    BatchEngine engine(options);
    engine.register_network("shared", make_network(5, 12, 70));
    serial_doc = results_to_json(engine.solve(jobs)).dump(2);
  }
  {
    BatchEngineOptions options;
    options.threads = 4;
    options.shards = 4;
    BatchEngine engine(options);
    engine.register_network("shared", make_network(5, 12, 70));
    sharded_doc = results_to_json(engine.solve(jobs)).dump(2);
  }
  EXPECT_EQ(serial_doc, sharded_doc);
}

TEST(BatchEngine, ArenaLeasesAreBoundedByShardCount) {
  BatchEngineOptions options;
  options.threads = 4;
  options.shards = 4;
  BatchEngine engine(options);
  engine.register_network("shared", make_network(5, 12, 70));
  const std::vector<SolveJob> jobs = shared_network_jobs();
  for (int round = 0; round < 3; ++round) {
    (void)engine.solve(jobs);
  }
  // Leases recycle across batches: repeated solves never grow the pool
  // past the peak concurrent shard count.
  EXPECT_LE(engine.arenas_created(), 4u);
}

TEST(BatchEngine, UnknownNetworkRejectsWholeBatchUpFront) {
  BatchEngine engine;
  engine.register_network("shared", make_network(5, 12, 70));
  std::vector<SolveJob> jobs = shared_network_jobs();
  jobs.back().network = "nope";
  EXPECT_THROW((void)engine.solve(jobs), std::invalid_argument);
}

TEST(BatchEngine, UnknownAlgorithmFailsOnlyThatJob) {
  BatchEngine engine;  // built-in factory: ELPC only
  engine.register_network("shared", make_network(5, 12, 70));
  std::vector<SolveJob> jobs = shared_network_jobs();
  jobs[2].algorithm = "Streamline";
  const std::vector<SolveResult> results = engine.solve(jobs);
  EXPECT_FALSE(results[2].error.empty());
  EXPECT_FALSE(results[2].result.feasible);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i != 2) {
      EXPECT_TRUE(results[i].error.empty()) << results[i].error;
    }
  }
}

TEST(BatchEngine, DuplicateRegistrationThrows) {
  BatchEngine engine;
  engine.register_network("shared", make_network(5, 12, 70));
  EXPECT_THROW(engine.register_network("shared", make_network(6, 5, 12)),
               std::invalid_argument);
}

TEST(BatchEngine, DeltaUpdatesResolveSubscribedJobs) {
  BatchEngine engine;
  graph::Network net = make_network(9, 12, 70);
  engine.register_network("shared", std::move(net));

  std::vector<SolveJob> jobs = shared_network_jobs();
  for (SolveJob& job : jobs) {
    job.resolve_on_update = job.objective == Objective::kMaxFrameRate;
  }
  const std::vector<SolveResult> first = engine.solve(jobs);
  EXPECT_EQ(engine.subscription_count(), jobs.size() / 2);
  // Re-submitting replaces subscriptions (keyed on id + network) rather
  // than duplicating them.
  (void)engine.solve(jobs);
  EXPECT_EQ(engine.subscription_count(), jobs.size() / 2);
  // Re-submitting one job with the flag off unsubscribes it.
  {
    std::vector<SolveJob> unsubscribe(1, jobs[1]);
    unsubscribe[0].resolve_on_update = false;
    (void)engine.solve(unsubscribe);
    EXPECT_EQ(engine.subscription_count(), jobs.size() / 2 - 1);
    (void)engine.solve(std::vector<SolveJob>(1, jobs[1]));  // restore
    EXPECT_EQ(engine.subscription_count(), jobs.size() / 2);
  }

  // Throttle every link the first frame-rate solution used: its
  // bottleneck must degrade, and the re-solve must see revision 1.
  const NetworkSnapshot snap = engine.session("shared").snapshot();
  std::vector<graph::LinkUpdate> updates;
  for (graph::NodeId v = 0; v < snap->node_count(); ++v) {
    for (const graph::Edge& e : snap->out_edges(v)) {
      updates.push_back(graph::LinkUpdate{
          e.from, e.to,
          graph::LinkAttr{e.attr.bandwidth_mbps * 0.01,
                          e.attr.min_delay_s}});
    }
  }
  const std::vector<SolveResult> resolved =
      engine.apply_link_updates("shared", updates);

  ASSERT_EQ(resolved.size(), jobs.size() / 2);
  for (const SolveResult& r : resolved) {
    EXPECT_EQ(r.network_revision, 1u);
    // Match the first-pass result by job id: the unsubscribe/resubscribe
    // round above moved one subscription to the end of the table, so
    // resolved order is not a subsequence of job order.
    const auto match =
        std::find_if(first.begin(), first.end(), [&r](const SolveResult& s) {
          return s.job_id == r.job_id;
        });
    ASSERT_NE(match, first.end()) << r.job_id;
    ASSERT_TRUE(r.result.feasible);
    EXPECT_GT(r.result.seconds, match->result.seconds);
  }
  // A 100x bandwidth cut leaves the session still at one CSR build.
  EXPECT_EQ(engine.session("shared").finalize_builds(), 1u);
}

TEST(BatchEngine, SubscriptionPinsItsRevisionAgainstEviction) {
  BatchEngineOptions options;
  options.session_history_bytes = 0;  // evict unpinned history eagerly
  BatchEngine engine(options);
  engine.register_network("shared", make_network(5, 12, 70));

  std::vector<SolveJob> jobs = shared_network_jobs();
  jobs.resize(1);
  jobs[0].objective = Objective::kMaxFrameRate;
  jobs[0].cost = default_cost(jobs[0].objective);
  jobs[0].resolve_on_update = true;
  ASSERT_TRUE(engine.solve(jobs)[0].error.empty());
  ASSERT_EQ(engine.subscription_count(), 1u);

  // Deltas applied on the session directly (no engine-driven re-solve):
  // the subscription keeps pinning revision 0, which must survive every
  // sweep while all other superseded revisions are evicted.
  NetworkSession& session = engine.session("shared");
  const graph::Edge edge = session.snapshot()->out_edges(0).front();
  for (int i = 1; i <= 10; ++i) {
    const std::vector<graph::LinkUpdate> updates = {graph::LinkUpdate{
        edge.from, edge.to,
        graph::LinkAttr{static_cast<double>(i), edge.attr.min_delay_s}}};
    session.apply_link_updates(updates);
  }
  EXPECT_EQ(session.cache_stats().cached_revisions, 1u);
  EXPECT_NE(session.revision_snapshot(0), nullptr);

  // An engine-driven re-solve re-pins the subscription to the current
  // revision; revision 0 becomes unpinned and the sweep reclaims it.
  const std::vector<graph::LinkUpdate> final_update = {graph::LinkUpdate{
      edge.from, edge.to, graph::LinkAttr{11.0, edge.attr.min_delay_s}}};
  ASSERT_EQ(engine.apply_link_updates("shared", final_update).size(), 1u);
  EXPECT_EQ(session.cache_stats().cached_revisions, 0u);
  EXPECT_EQ(session.revision_snapshot(0), nullptr);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.sessions, 1u);
  EXPECT_EQ(stats.subscriptions, 1u);
  EXPECT_GE(stats.cache_evictions, 10u);
}

TEST(BatchEngine, RepeatsReportTimingWithoutChangingResults) {
  BatchEngine engine;
  engine.register_network("shared", make_network(5, 12, 70));
  std::vector<SolveJob> jobs = shared_network_jobs();
  jobs.resize(2);
  jobs[0].repeats = 5;
  const std::vector<SolveResult> timed = engine.solve(jobs);

  BatchEngine plain;
  plain.register_network("shared", make_network(5, 12, 70));
  std::vector<SolveJob> once = jobs;
  once[0].repeats = 1;
  const std::vector<SolveResult> single = plain.solve(once);

  EXPECT_EQ(timed[0].result.seconds, single[0].result.seconds);
  EXPECT_EQ(timed[0].result.mapping, single[0].result.mapping);
  EXPECT_GE(timed[0].mean_runtime_ms, 0.0);
}

TEST(BatchSerialize, JobRoundTripsThroughJson) {
  SolveJob job;
  job.id = "j7";
  job.network = "netA";
  job.pipeline = make_pipeline(3, 4);
  job.source = 1;
  job.destination = 5;
  job.objective = Objective::kMaxFrameRate;
  job.algorithm = "Greedy";
  job.cost = pipeline::CostOptions{.include_link_delay = true};
  job.repeats = 4;
  job.warmup = true;
  job.resolve_on_update = true;

  const SolveJob back = job_from_json(to_json(job));
  EXPECT_EQ(back.id, job.id);
  EXPECT_EQ(back.network, job.network);
  EXPECT_EQ(back.objective, job.objective);
  EXPECT_EQ(back.algorithm, job.algorithm);
  EXPECT_EQ(back.source, job.source);
  EXPECT_EQ(back.destination, job.destination);
  EXPECT_EQ(back.cost.include_link_delay, job.cost.include_link_delay);
  EXPECT_EQ(back.repeats, job.repeats);
  EXPECT_EQ(back.warmup, job.warmup);
  EXPECT_EQ(back.resolve_on_update, job.resolve_on_update);
  EXPECT_EQ(back.pipeline.module_count(), job.pipeline.module_count());
}

TEST(BatchSerialize, ObjectiveDependentCostDefaults) {
  SolveJob job;
  job.id = "j";
  job.network = "n";
  job.pipeline = make_pipeline(3, 3);
  job.source = 0;
  job.destination = 1;

  job.objective = Objective::kMinDelay;
  util::Json delay_doc = to_json(job);
  // Drop the explicit field to exercise the default.
  util::Json stripped = util::JsonObject{};
  for (const auto& [key, value] : delay_doc.as_object()) {
    if (key != "include_link_delay") {
      stripped.set(key, value);
    }
  }
  EXPECT_TRUE(job_from_json(stripped).cost.include_link_delay);

  stripped.set("objective", "framerate");
  EXPECT_FALSE(job_from_json(stripped).cost.include_link_delay);
}

TEST(BatchSerialize, SpecRoundTripAndUnknownObjectiveRejected) {
  BatchSpec spec;
  spec.networks.emplace_back("netA", make_network(4, 6, 20));
  SolveJob job;
  job.id = "j0";
  job.network = "netA";
  job.pipeline = make_pipeline(3, 3);
  job.source = 0;
  job.destination = 5;
  job.cost = default_cost(job.objective);
  spec.jobs.push_back(job);

  const BatchSpec back = batch_spec_from_json(to_json(spec));
  ASSERT_EQ(back.networks.size(), 1u);
  EXPECT_EQ(back.networks[0].first, "netA");
  EXPECT_EQ(back.networks[0].second.link_count(),
            spec.networks[0].second.link_count());
  ASSERT_EQ(back.jobs.size(), 1u);
  EXPECT_EQ(back.jobs[0].id, "j0");

  EXPECT_THROW((void)objective_from_name("latency"), std::invalid_argument);
}

}  // namespace
}  // namespace elpc::service
