#include "experiments/cli_app.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "util/file_io.hpp"

namespace elpc::experiments {
namespace {

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  CliRun result;
  result.code = run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

/// Temp file that cleans up after itself.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Cli, NoArgumentsPrintsUsage) {
  const CliRun r = run({});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const CliRun r = run({"frobnicate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, AlgorithmsListsRegistry) {
  const CliRun r = run({"algorithms"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("ELPC"), std::string::npos);
  EXPECT_NE(r.out.find("Streamline"), std::string::npos);
  EXPECT_NE(r.out.find("Greedy"), std::string::npos);
}

TEST(Cli, GenerateToStdout) {
  const CliRun r = run({"generate", "--case", "1"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("\"pipeline\""), std::string::npos);
  EXPECT_NE(r.out.find("\"network\""), std::string::npos);
}

TEST(Cli, GenerateCaseOutOfRangeFails) {
  const CliRun r = run({"generate", "--case", "21"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--case"), std::string::npos);
}

TEST(Cli, GenerateMapSimulateRoundTrip) {
  TempFile file("cli_scenario.json");
  const CliRun gen = run({"generate", "--modules", "5", "--nodes", "8",
                          "--links", "44", "--seed", "3", "--out",
                          file.path()});
  ASSERT_EQ(gen.code, 0) << gen.err;

  const CliRun mapped =
      run({"map", "--in", file.path(), "--algorithm", "ELPC"});
  ASSERT_EQ(mapped.code, 0) << mapped.err;
  EXPECT_NE(mapped.out.find("delay"), std::string::npos);
  EXPECT_NE(mapped.out.find("mapping"), std::string::npos);

  const CliRun streamed = run({"simulate", "--in", file.path(), "--frames",
                               "50"});
  ASSERT_EQ(streamed.code, 0) << streamed.err;
  EXPECT_NE(streamed.out.find("simulated rate"), std::string::npos);
}

TEST(Cli, MapDefaultsToSmallCaseAndPaperPath) {
  const CliRun r = run({"map", "--objective", "framerate"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("frames/s"), std::string::npos);
  EXPECT_NE(r.out.find("path"), std::string::npos);
}

TEST(Cli, MapRejectsBadObjective) {
  const CliRun r = run({"map", "--objective", "banana"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("objective"), std::string::npos);
}

TEST(Cli, MapRejectsUnknownAlgorithm) {
  const CliRun r = run({"map", "--algorithm", "nope"});
  EXPECT_EQ(r.code, 1);
}

TEST(Cli, MapMissingFileReportsFailure) {
  const CliRun r = run({"map", "--in", "/nonexistent/x.json"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("failure"), std::string::npos);
}

TEST(Cli, SimulateDefaultsRun) {
  const CliRun r = run({"simulate", "--frames", "20"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("events executed"), std::string::npos);
}

TEST(FileIo, RoundTrip) {
  TempFile file("file_io.txt");
  util::write_text_file(file.path(), "hello\nworld");
  EXPECT_EQ(util::read_text_file(file.path()), "hello\nworld");
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW((void)util::read_text_file("/nonexistent/nope"),
               std::runtime_error);
  EXPECT_THROW(util::write_text_file("/nonexistent/dir/nope", "x"),
               std::runtime_error);
}

}  // namespace
}  // namespace elpc::experiments
