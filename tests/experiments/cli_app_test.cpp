#include "experiments/cli_app.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/generators.hpp"
#include "pipeline/generator.hpp"
#include "service/serialize.hpp"
#include "util/file_io.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace elpc::experiments {
namespace {

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  CliRun result;
  result.code = run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

/// Temp file that cleans up after itself.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Cli, NoArgumentsPrintsUsage) {
  const CliRun r = run({});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const CliRun r = run({"frobnicate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, AlgorithmsListsRegistry) {
  const CliRun r = run({"algorithms"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("ELPC"), std::string::npos);
  EXPECT_NE(r.out.find("Streamline"), std::string::npos);
  EXPECT_NE(r.out.find("Greedy"), std::string::npos);
}

TEST(Cli, GenerateToStdout) {
  const CliRun r = run({"generate", "--case", "1"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("\"pipeline\""), std::string::npos);
  EXPECT_NE(r.out.find("\"network\""), std::string::npos);
}

TEST(Cli, GenerateCaseOutOfRangeFails) {
  const CliRun r = run({"generate", "--case", "21"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--case"), std::string::npos);
}

TEST(Cli, GenerateMapSimulateRoundTrip) {
  TempFile file("cli_scenario.json");
  const CliRun gen = run({"generate", "--modules", "5", "--nodes", "8",
                          "--links", "44", "--seed", "3", "--out",
                          file.path()});
  ASSERT_EQ(gen.code, 0) << gen.err;

  const CliRun mapped =
      run({"map", "--in", file.path(), "--algorithm", "ELPC"});
  ASSERT_EQ(mapped.code, 0) << mapped.err;
  EXPECT_NE(mapped.out.find("delay"), std::string::npos);
  EXPECT_NE(mapped.out.find("mapping"), std::string::npos);

  const CliRun streamed = run({"simulate", "--in", file.path(), "--frames",
                               "50"});
  ASSERT_EQ(streamed.code, 0) << streamed.err;
  EXPECT_NE(streamed.out.find("simulated rate"), std::string::npos);
}

TEST(Cli, MapDefaultsToSmallCaseAndPaperPath) {
  const CliRun r = run({"map", "--objective", "framerate"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("frames/s"), std::string::npos);
  EXPECT_NE(r.out.find("path"), std::string::npos);
}

TEST(Cli, MapRejectsBadObjective) {
  const CliRun r = run({"map", "--objective", "banana"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("objective"), std::string::npos);
}

TEST(Cli, MapRejectsUnknownAlgorithm) {
  const CliRun r = run({"map", "--algorithm", "nope"});
  EXPECT_EQ(r.code, 1);
}

TEST(Cli, MapMissingFileReportsFailure) {
  const CliRun r = run({"map", "--in", "/nonexistent/x.json"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("failure"), std::string::npos);
}

TEST(Cli, SimulateDefaultsRun) {
  const CliRun r = run({"simulate", "--frames", "20"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("events executed"), std::string::npos);
}

std::string write_batch_jobs(const std::string& path) {
  util::Rng rng(31);
  service::BatchSpec spec;
  spec.networks.emplace_back(
      "net", graph::random_connected_network(rng, 7, 30, {}));
  for (std::size_t j = 0; j < 4; ++j) {
    service::SolveJob job;
    job.id = "job" + std::to_string(j);
    job.network = "net";
    job.pipeline = pipeline::random_pipeline(rng, 4, {});
    job.source = 0;
    job.destination = 6;
    job.objective = j % 2 == 0 ? service::Objective::kMinDelay
                               : service::Objective::kMaxFrameRate;
    job.cost = service::default_cost(job.objective);
    spec.jobs.push_back(std::move(job));
  }
  const std::string doc = service::to_json(spec).dump(2);
  util::write_text_file(path, doc);
  return doc;
}

TEST(Cli, BatchRunsJobFileAndEmitsCanonicalResults) {
  TempFile jobs("batch_jobs.json");
  write_batch_jobs(jobs.path());

  const CliRun serial =
      run({"batch", "--jobs", jobs.path(), "--threads", "1"});
  ASSERT_EQ(serial.code, 0) << serial.err;
  const util::Json doc = util::Json::parse(serial.out);
  ASSERT_EQ(doc.at("results").as_array().size(), 4u);
  for (const util::Json& entry : doc.at("results").as_array()) {
    EXPECT_TRUE(entry.at("feasible").as_bool());
    EXPECT_FALSE(entry.contains("mean_runtime_ms"));  // canonical form
  }

  // Same file, more threads: byte-identical document.
  const CliRun sharded =
      run({"batch", "--jobs", jobs.path(), "--threads", "4"});
  ASSERT_EQ(sharded.code, 0) << sharded.err;
  EXPECT_EQ(serial.out, sharded.out);
}

TEST(Cli, BatchTimingFlagAddsMetadataAndOutWritesFile) {
  TempFile jobs("batch_jobs_timing.json");
  write_batch_jobs(jobs.path());
  TempFile results("batch_results.json");

  const CliRun r = run({"batch", "--jobs", jobs.path(), "--timing", "--out",
                        results.path()});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("wrote"), std::string::npos);
  const util::Json doc =
      util::Json::parse(util::read_text_file(results.path()));
  for (const util::Json& entry : doc.at("results").as_array()) {
    EXPECT_TRUE(entry.contains("mean_runtime_ms"));
    EXPECT_TRUE(entry.contains("shard"));
  }
}

TEST(Cli, BatchRequiresJobsFile) {
  const CliRun r = run({"batch"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--jobs"), std::string::npos);
}

TEST(FileIo, RoundTrip) {
  TempFile file("file_io.txt");
  util::write_text_file(file.path(), "hello\nworld");
  EXPECT_EQ(util::read_text_file(file.path()), "hello\nworld");
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW((void)util::read_text_file("/nonexistent/nope"),
               std::runtime_error);
  EXPECT_THROW(util::write_text_file("/nonexistent/dir/nope", "x"),
               std::runtime_error);
}

}  // namespace
}  // namespace elpc::experiments
