#include "experiments/cli_app.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "graph/generators.hpp"
#include "pipeline/generator.hpp"
#include "service/serialize.hpp"
#include "util/file_io.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace elpc::experiments {
namespace {

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  CliRun result;
  result.code = run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

/// Temp file that cleans up after itself.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Cli, NoArgumentsPrintsUsage) {
  const CliRun r = run({});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const CliRun r = run({"frobnicate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, AlgorithmsListsRegistry) {
  const CliRun r = run({"algorithms"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("ELPC"), std::string::npos);
  EXPECT_NE(r.out.find("Streamline"), std::string::npos);
  EXPECT_NE(r.out.find("Greedy"), std::string::npos);
}

TEST(Cli, GenerateToStdout) {
  const CliRun r = run({"generate", "--case", "1"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("\"pipeline\""), std::string::npos);
  EXPECT_NE(r.out.find("\"network\""), std::string::npos);
}

TEST(Cli, GenerateCaseOutOfRangeFails) {
  const CliRun r = run({"generate", "--case", "21"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--case"), std::string::npos);
}

TEST(Cli, GenerateMapSimulateRoundTrip) {
  TempFile file("cli_scenario.json");
  const CliRun gen = run({"generate", "--modules", "5", "--nodes", "8",
                          "--links", "44", "--seed", "3", "--out",
                          file.path()});
  ASSERT_EQ(gen.code, 0) << gen.err;

  const CliRun mapped =
      run({"map", "--in", file.path(), "--algorithm", "ELPC"});
  ASSERT_EQ(mapped.code, 0) << mapped.err;
  EXPECT_NE(mapped.out.find("delay"), std::string::npos);
  EXPECT_NE(mapped.out.find("mapping"), std::string::npos);

  const CliRun streamed = run({"simulate", "--in", file.path(), "--frames",
                               "50"});
  ASSERT_EQ(streamed.code, 0) << streamed.err;
  EXPECT_NE(streamed.out.find("simulated rate"), std::string::npos);
}

TEST(Cli, MapDefaultsToSmallCaseAndPaperPath) {
  const CliRun r = run({"map", "--objective", "framerate"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("frames/s"), std::string::npos);
  EXPECT_NE(r.out.find("path"), std::string::npos);
}

TEST(Cli, MapRejectsBadObjective) {
  const CliRun r = run({"map", "--objective", "banana"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("objective"), std::string::npos);
}

TEST(Cli, MapRejectsUnknownAlgorithm) {
  const CliRun r = run({"map", "--algorithm", "nope"});
  EXPECT_EQ(r.code, 1);
}

TEST(Cli, MapMissingFileReportsFailure) {
  const CliRun r = run({"map", "--in", "/nonexistent/x.json"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("failure"), std::string::npos);
}

TEST(Cli, SimulateDefaultsRun) {
  const CliRun r = run({"simulate", "--frames", "20"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("events executed"), std::string::npos);
}

std::string write_batch_jobs(const std::string& path) {
  util::Rng rng(31);
  service::BatchSpec spec;
  spec.networks.emplace_back(
      "net", graph::random_connected_network(rng, 7, 30, {}));
  for (std::size_t j = 0; j < 4; ++j) {
    service::SolveJob job;
    job.id = "job" + std::to_string(j);
    job.network = "net";
    job.pipeline = pipeline::random_pipeline(rng, 4, {});
    job.source = 0;
    job.destination = 6;
    job.objective = j % 2 == 0 ? service::Objective::kMinDelay
                               : service::Objective::kMaxFrameRate;
    job.cost = service::default_cost(job.objective);
    spec.jobs.push_back(std::move(job));
  }
  const std::string doc = service::to_json(spec).dump(2);
  util::write_text_file(path, doc);
  return doc;
}

TEST(Cli, BatchRunsJobFileAndEmitsCanonicalResults) {
  TempFile jobs("batch_jobs.json");
  write_batch_jobs(jobs.path());

  const CliRun serial =
      run({"batch", "--jobs", jobs.path(), "--threads", "1"});
  ASSERT_EQ(serial.code, 0) << serial.err;
  const util::Json doc = util::Json::parse(serial.out);
  ASSERT_EQ(doc.at("results").as_array().size(), 4u);
  for (const util::Json& entry : doc.at("results").as_array()) {
    EXPECT_TRUE(entry.at("feasible").as_bool());
    EXPECT_FALSE(entry.contains("mean_runtime_ms"));  // canonical form
  }

  // Same file, more threads: byte-identical document.
  const CliRun sharded =
      run({"batch", "--jobs", jobs.path(), "--threads", "4"});
  ASSERT_EQ(sharded.code, 0) << sharded.err;
  EXPECT_EQ(serial.out, sharded.out);
}

TEST(Cli, BatchTimingFlagAddsMetadataAndOutWritesFile) {
  TempFile jobs("batch_jobs_timing.json");
  write_batch_jobs(jobs.path());
  TempFile results("batch_results.json");

  const CliRun r = run({"batch", "--jobs", jobs.path(), "--timing", "--out",
                        results.path()});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("wrote"), std::string::npos);
  const util::Json doc =
      util::Json::parse(util::read_text_file(results.path()));
  for (const util::Json& entry : doc.at("results").as_array()) {
    EXPECT_TRUE(entry.contains("mean_runtime_ms"));
    EXPECT_TRUE(entry.contains("shard"));
  }
}

TEST(Cli, FuzzIncrementalParityByteForByte) {
  // The CI incremental-parity job's core check, in-process and small:
  // same seed, with and without --incremental, byte-identical documents
  // — and the incremental run must actually have reused checkpoints.
  const CliRun plain = run({"fuzz", "--seed", "5", "--rounds", "6"});
  ASSERT_EQ(plain.code, 0) << plain.err;
  const CliRun incremental = run({"fuzz", "--seed", "5", "--rounds", "6",
                                  "--incremental", "--min-hits", "1"});
  ASSERT_EQ(incremental.code, 0) << incremental.err;
  EXPECT_EQ(plain.out, incremental.out);
  const util::Json doc = util::Json::parse(plain.out);
  EXPECT_EQ(doc.at("resolves").as_array().size(), 6u);
}

TEST(Cli, FuzzMinHitsFailsWhenReuseCannotEngage) {
  // Without --incremental there are no hits, so --min-hits must fail
  // loudly instead of green-lighting a parity run that proved nothing.
  const CliRun r =
      run({"fuzz", "--seed", "5", "--rounds", "2", "--min-hits", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--min-hits"), std::string::npos);
}

TEST(Cli, BatchRequiresJobsFile) {
  const CliRun r = run({"batch"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--jobs"), std::string::npos);
}

TEST(Cli, BatchMalformedJobFileGetsOneLineDiagnostic) {
  TempFile jobs("batch_malformed.json");
  util::write_text_file(jobs.path(), "{\"networks\": [,,,");
  const CliRun r = run({"batch", "--jobs", jobs.path()});
  EXPECT_EQ(r.code, 1);
  // One clear diagnostic naming the file — not a raw parser exception.
  EXPECT_NE(r.err.find("cannot load job file"), std::string::npos);
  EXPECT_NE(r.err.find(jobs.path()), std::string::npos);
}

TEST(Cli, BatchJobFileWithWrongShapeGetsOneLineDiagnostic) {
  TempFile jobs("batch_wrong_shape.json");
  util::write_text_file(jobs.path(), "{\"networks\": 7}");  // valid JSON,
                                                            // wrong schema
  const CliRun r = run({"batch", "--jobs", jobs.path()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot load job file"), std::string::npos);
}

TEST(Cli, BatchUnknownSessionIdGetsOneLineDiagnostic) {
  TempFile jobs("batch_unknown_net.json");
  // A well-formed spec whose job names a session the file never
  // registers.
  const std::string doc = write_batch_jobs(jobs.path());
  util::Json spec = util::Json::parse(doc);
  util::Json patched = util::JsonObject{};
  patched.set("networks", spec.at("networks"));
  util::JsonArray jobs_array = spec.at("jobs").as_array();
  jobs_array[0].set("network", "ghost");
  patched.set("jobs", util::Json(std::move(jobs_array)));
  util::write_text_file(jobs.path(), patched.dump(2));

  const CliRun r = run({"batch", "--jobs", jobs.path()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("elpc batch"), std::string::npos);
  EXPECT_NE(r.err.find("unregistered network 'ghost'"), std::string::npos);
}

TEST(Cli, ServeRequiresSocket) {
  const CliRun r = run({"serve"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--socket"), std::string::npos);
}

TEST(Cli, ClientRequiresVerbAndSocket) {
  EXPECT_EQ(run({"client"}).code, 1);
  const CliRun r = run({"client", "stats"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--socket"), std::string::npos);
}

TEST(Cli, ServeAndClientLoadMatchBatchByteForByte) {
  TempFile jobs("daemon_jobs.json");
  write_batch_jobs(jobs.path());
  const std::string socket =
      ::testing::TempDir() + "/elpc_cli_daemon.sock";

  // The daemon on its own thread; the client drives it to shutdown, so
  // the thread joins cleanly.
  CliRun served;
  std::thread server([&served, &socket]() {
    served = run({"serve", "--socket", socket, "--threads", "2"});
  });
  // The listener binds inside the serve thread; ping with a read-only
  // verb until it is up, then load exactly once (a retried load would
  // re-register its networks).
  CliRun ping;
  for (int attempt = 0; attempt < 500; ++attempt) {
    ping = run({"client", "stats", "--socket", socket});
    if (ping.code == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(ping.code, 0) << ping.err;
  const CliRun loaded = run({"client", "load", "--socket", socket, "--jobs",
                             jobs.path(), "--wait"});
  ASSERT_EQ(loaded.code, 0) << loaded.err;

  const CliRun stats = run({"client", "stats", "--socket", socket});
  ASSERT_EQ(stats.code, 0) << stats.err;
  EXPECT_NE(stats.out.find("\"done\": 4"), std::string::npos);

  const CliRun down = run({"client", "shutdown", "--socket", socket});
  EXPECT_EQ(down.code, 0) << down.err;
  server.join();
  EXPECT_EQ(served.code, 0) << served.err;
  EXPECT_NE(served.out.find("listening"), std::string::npos);

  // The daemon path and the in-process batch path emit the same
  // canonical results document, byte for byte.
  const CliRun batch = run({"batch", "--jobs", jobs.path()});
  ASSERT_EQ(batch.code, 0) << batch.err;
  EXPECT_EQ(loaded.out, batch.out);
}

TEST(FileIo, RoundTrip) {
  TempFile file("file_io.txt");
  util::write_text_file(file.path(), "hello\nworld");
  EXPECT_EQ(util::read_text_file(file.path()), "hello\nworld");
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW((void)util::read_text_file("/nonexistent/nope"),
               std::runtime_error);
  EXPECT_THROW(util::write_text_file("/nonexistent/dir/nope", "x"),
               std::runtime_error);
}

}  // namespace
}  // namespace elpc::experiments
