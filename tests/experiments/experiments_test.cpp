#include <gtest/gtest.h>

#include "experiments/optimality.hpp"
#include "experiments/plot.hpp"
#include "experiments/registry.hpp"
#include "experiments/report.hpp"
#include "experiments/runner.hpp"
#include "experiments/scaling.hpp"
#include "workload/small_case.hpp"

namespace elpc::experiments {
namespace {

TEST(Registry, KnowsAllAlgorithms) {
  for (const std::string& name : registered_names()) {
    const mapping::MapperPtr mapper = make_mapper(name);
    ASSERT_NE(mapper, nullptr);
    EXPECT_EQ(mapper->name(), name);
  }
}

TEST(Registry, UnknownNameThrowsListingKnownOnes) {
  try {
    (void)make_mapper("nope");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ELPC"), std::string::npos);
  }
}

TEST(Registry, PaperMappersInPaperOrder) {
  const auto mappers = paper_mappers();
  ASSERT_EQ(mappers.size(), 3u);
  EXPECT_EQ(mappers[0]->name(), "ELPC");
  EXPECT_EQ(mappers[1]->name(), "Streamline");
  EXPECT_EQ(mappers[2]->name(), "Greedy");
}

TEST(Runner, RunCaseCoversBothObjectives) {
  const workload::Scenario s = workload::small_case();
  const CaseOutcome outcome = run_case(s, paper_mappers());
  EXPECT_EQ(outcome.case_name, s.name);
  EXPECT_EQ(outcome.modules, 5u);
  EXPECT_EQ(outcome.nodes, 6u);
  ASSERT_EQ(outcome.algos.size(), 3u);
  const AlgoOutcome& elpc = outcome.of("ELPC");
  EXPECT_TRUE(elpc.delay.feasible);
  EXPECT_TRUE(elpc.framerate.feasible);
  EXPECT_GT(elpc.delay_ms(), 0.0);
  EXPECT_GT(elpc.fps(), 0.0);
  EXPECT_GE(elpc.delay_runtime_ms, 0.0);
}

TEST(Runner, OfThrowsForUnknownAlgorithm) {
  const workload::Scenario s = workload::small_case();
  const CaseOutcome outcome = run_case(s, paper_mappers());
  EXPECT_THROW((void)outcome.of("nope"), std::out_of_range);
}

TEST(Runner, SuiteRunsInOrderAcrossThreads) {
  // First three cases only, to keep the test quick.
  auto specs = workload::default_suite();
  specs.resize(3);
  util::ThreadPool pool(2);
  const auto outcomes =
      run_suite(specs, workload::SuiteConfig{}, RunnerOptions{}, pool);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].case_name, "case1");
  EXPECT_EQ(outcomes[2].case_name, "case3");
}

std::vector<CaseOutcome> small_outcomes() {
  auto specs = workload::default_suite();
  specs.resize(4);
  util::ThreadPool pool(2);
  return run_suite(specs, workload::SuiteConfig{}, RunnerOptions{}, pool);
}

TEST(Report, Fig2TableHasOneRowPerCase) {
  const auto outcomes = small_outcomes();
  const util::TextTable table = fig2_table(outcomes);
  EXPECT_EQ(table.row_count(), outcomes.size());
  const std::string text = table.render();
  EXPECT_NE(text.find("case1"), std::string::npos);
  EXPECT_NE(text.find("delay:ELPC"), std::string::npos);
}

TEST(Report, ChartsRenderWithLegend) {
  const auto outcomes = small_outcomes();
  const std::string fig5 = fig5_chart(outcomes);
  EXPECT_NE(fig5.find("E = ELPC"), std::string::npos);
  EXPECT_NE(fig5.find("delay"), std::string::npos);
  const std::string fig6 = fig6_chart(outcomes);
  EXPECT_NE(fig6.find("frame rate"), std::string::npos);
}

TEST(Report, RuntimeTableCoversAlgorithms) {
  const auto outcomes = small_outcomes();
  const std::string text = runtime_table(outcomes).render();
  EXPECT_NE(text.find("t(ELPC) ms"), std::string::npos);
}

TEST(Report, JsonExportRoundTripsThroughParser) {
  const auto outcomes = small_outcomes();
  const util::Json doc = outcomes_to_json(outcomes);
  const util::Json parsed = util::Json::parse(doc.dump());
  ASSERT_TRUE(parsed.contains("cases"));
  EXPECT_EQ(parsed.at("cases").as_array().size(), outcomes.size());
  const util::Json& first = parsed.at("cases").as_array().front();
  EXPECT_EQ(first.at("case").as_string(), "case1");
  EXPECT_EQ(first.at("algorithms").as_array().size(), 3u);
}

TEST(Report, ShapeChecksProduceVerdicts) {
  const auto outcomes = small_outcomes();
  const auto checks = shape_checks(outcomes);
  EXPECT_GE(checks.size(), 3u);
  for (const ShapeCheck& check : checks) {
    EXPECT_FALSE(check.description.empty());
  }
}

TEST(Plot, RendersSeriesMarkers) {
  Series s1{"alpha", 'A', {1.0, 2.0, 3.0}};
  Series s2{"beta", 'B', {3.0, 2.0, 1.0}};
  const std::string chart = render_chart({s1, s2}, ChartConfig{.y_label = "y"});
  EXPECT_NE(chart.find('A'), std::string::npos);
  EXPECT_NE(chart.find('B'), std::string::npos);
  EXPECT_NE(chart.find("A = alpha"), std::string::npos);
}

TEST(Plot, RejectsEmptyAndMismatchedSeries) {
  EXPECT_THROW((void)render_chart({}, ChartConfig{}), std::invalid_argument);
  Series a{"a", 'a', {1.0, 2.0}};
  Series b{"b", 'b', {1.0}};
  EXPECT_THROW((void)render_chart({a, b}, ChartConfig{}),
               std::invalid_argument);
}

TEST(Plot, HandlesNanGaps) {
  Series s{"s", 's', {1.0, std::nan(""), 2.0}};
  EXPECT_NO_THROW((void)render_chart({s}, ChartConfig{}));
}

TEST(Optimality, TinyStudyRunsCleanly) {
  GapStudyConfig config;
  config.instances = 25;
  config.max_nodes = 7;
  config.max_modules = 5;
  const GapStudyResult r = run_gap_study(config);
  EXPECT_EQ(r.instances, 25u);
  EXPECT_EQ(r.delay_matches, r.delay_both_feasible)
      << "the delay DP must always match the exhaustive optimum";
  EXPECT_LT(r.delay_max_rel_gap, 1e-9);
  EXPECT_GE(r.framerate_match_fraction(), 0.85);
}

TEST(Optimality, ConfigValidation) {
  GapStudyConfig bad;
  bad.density = 0.0;
  EXPECT_THROW((void)run_gap_study(bad), std::invalid_argument);
  bad = GapStudyConfig{};
  bad.min_modules = 5;
  bad.max_modules = 3;
  EXPECT_THROW((void)run_gap_study(bad), std::invalid_argument);
}

TEST(Scaling, StudyProducesOnePointPerSize) {
  ScalingConfig config;
  config.sizes = {{4, 8}, {6, 15}};
  config.repeats = 1;
  const auto points = run_scaling_study(config);
  ASSERT_EQ(points.size(), 2u);
  for (const ScalingPoint& p : points) {
    EXPECT_EQ(p.min_delay_ms.size(), scaling_algorithm_names().size());
    EXPECT_EQ(p.max_frame_rate_ms.size(), scaling_algorithm_names().size());
    for (std::size_t a = 0; a < p.min_delay_ms.size(); ++a) {
      EXPECT_GE(p.min_delay_ms[a], 0.0);
      EXPECT_GE(p.max_frame_rate_ms[a], 0.0);
    }
  }
}

}  // namespace
}  // namespace elpc::experiments
