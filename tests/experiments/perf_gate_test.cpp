#include "experiments/perf_gate.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace elpc::experiments {
namespace {

util::Json make_doc(std::initializer_list<std::pair<const char*, double>>
                        algorithm_to_total_ms) {
  util::JsonArray records;
  for (const auto& [algorithm, total_ms] : algorithm_to_total_ms) {
    util::Json record = util::JsonObject{};
    record.set("modules", 10);
    record.set("nodes", 25);
    record.set("links", 360);
    record.set("algorithm", algorithm);
    record.set("min_delay_mean_ms", total_ms / 2.0);
    record.set("max_frame_rate_mean_ms", total_ms / 2.0);
    record.set("total_mean_ms", total_ms);
    records.push_back(std::move(record));
  }
  util::Json doc = util::JsonObject{};
  doc.set("bench", "runtime_scaling");
  doc.set("unit", "milliseconds");
  doc.set("records", util::Json(std::move(records)));
  return doc;
}

TEST(PerfGate, IdenticalDocumentsPass) {
  const util::Json doc = make_doc({{"ELPC", 40.0}, {"Greedy", 12.0}});
  const PerfGateReport report = compare_runtime_scaling(doc, doc);
  EXPECT_TRUE(report.pass());
  EXPECT_EQ(report.compared, 2u);
  EXPECT_NE(report.render().find("[PASS]"), std::string::npos);
}

TEST(PerfGate, LargeRegressionFails) {
  const util::Json reference = make_doc({{"ELPC", 40.0}});
  const util::Json candidate = make_doc({{"ELPC", 400.0}});
  const PerfGateReport report =
      compare_runtime_scaling(reference, candidate);
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_FALSE(report.pass());
  EXPECT_DOUBLE_EQ(report.regressions[0].ratio(), 10.0);
  EXPECT_NE(report.render().find("[FAIL]"), std::string::npos);
}

TEST(PerfGate, SubFloorTimesNeverFailWhateverTheRatio) {
  // 0.01 ms -> 5 ms is a 500x ratio but below the noise floor.
  const util::Json reference = make_doc({{"ELPC", 0.01}});
  const util::Json candidate = make_doc({{"ELPC", 5.0}});
  EXPECT_TRUE(compare_runtime_scaling(reference, candidate).pass());
}

TEST(PerfGate, WithinToleranceSlowdownPasses) {
  const util::Json reference = make_doc({{"ELPC", 40.0}});
  const util::Json candidate = make_doc({{"ELPC", 100.0}});
  PerfGateOptions options;
  options.tolerance = 3.0;
  EXPECT_TRUE(
      compare_runtime_scaling(reference, candidate, options).pass());
  options.tolerance = 2.0;
  EXPECT_FALSE(
      compare_runtime_scaling(reference, candidate, options).pass());
}

TEST(PerfGate, MissingRecordFails) {
  const util::Json reference = make_doc({{"ELPC", 40.0}, {"Greedy", 12.0}});
  const util::Json candidate = make_doc({{"ELPC", 40.0}});
  const PerfGateReport report =
      compare_runtime_scaling(reference, candidate);
  EXPECT_FALSE(report.pass());
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_NE(report.missing[0].find("Greedy"), std::string::npos);
}

TEST(PerfGate, ExtraCandidateRecordsAreFine) {
  // New scales added by a later PR must not break the gate.
  const util::Json reference = make_doc({{"ELPC", 40.0}});
  const util::Json candidate = make_doc({{"ELPC", 40.0}, {"Greedy", 12.0}});
  EXPECT_TRUE(compare_runtime_scaling(reference, candidate).pass());
}

TEST(PerfGate, RejectsMalformedDocumentsAndBadOptions) {
  const util::Json doc = make_doc({{"ELPC", 40.0}});
  EXPECT_THROW(
      (void)compare_runtime_scaling(util::Json(util::JsonObject{}), doc),
      std::invalid_argument);
  PerfGateOptions options;
  options.tolerance = 0.5;
  EXPECT_THROW((void)compare_runtime_scaling(doc, doc, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace elpc::experiments
