// E1 — reproduces the paper's Fig. 2: the 20-case comparison table of
// minimum end-to-end delay (node reuse) and maximum frame rate (no node
// reuse) for ELPC, Streamline, and Greedy, followed by the shape checks
// the paper's conclusions imply.  google-benchmark then times one full
// case execution at three problem scales.

#include "bench_common.hpp"

#include "experiments/report.hpp"

namespace {

using namespace elpc;

void print_table() {
  bench::banner("Fig. 2 — mapping performance comparison (20 cases)");
  const std::vector<experiments::CaseOutcome> outcomes =
      bench::run_default_suite();
  std::printf("%s\n", experiments::fig2_table(outcomes).render().c_str());
  std::printf("delay in ms (node reuse enabled); fps = frames/second "
              "(node reuse disabled); '-' = no feasible mapping found\n\n");

  bench::banner("shape checks (paper conclusions)");
  bool all = true;
  for (const experiments::ShapeCheck& check :
       experiments::shape_checks(outcomes)) {
    std::printf("[%s] %s\n", check.pass ? "PASS" : "FAIL",
                check.description.c_str());
    all = all && check.pass;
  }
  std::printf("%s\n", all ? "all shape checks passed"
                          : "SOME SHAPE CHECKS FAILED");
}

/// Times one complete case (three algorithms, both objectives).
void BM_RunCase(benchmark::State& state) {
  const auto specs = workload::default_suite();
  const auto& spec = specs[static_cast<std::size_t>(state.range(0))];
  const workload::Scenario scenario = workload::build_scenario(spec);
  const auto mappers = experiments::paper_mappers();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        experiments::run_case(scenario, mappers));
  }
  state.SetLabel(spec.name + " (m=" + std::to_string(spec.modules) +
                 ", n=" + std::to_string(spec.nodes) + ")");
}
BENCHMARK(BM_RunCase)->Arg(0)->Arg(9)->Arg(19)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return elpc::bench::run_registered_benchmarks(argc, argv);
}
