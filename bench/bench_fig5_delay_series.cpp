// E4 — reproduces the paper's Fig. 5: minimum end-to-end delay over the
// 20 evaluation cases for the three algorithms, as an ASCII chart plus
// the underlying CSV series.  The paper's observation to reproduce: the
// delay grows with problem size (longer pipelines accumulate more
// computing and transport terms) and ELPC is the lowest curve
// everywhere.

#include "bench_common.hpp"

#include "core/elpc.hpp"
#include "experiments/report.hpp"

namespace {

using namespace elpc;

void print_series() {
  bench::banner(
      "Fig. 5 — minimum end-to-end delay across the 20 cases");
  const std::vector<experiments::CaseOutcome> outcomes =
      bench::run_default_suite();
  std::printf("%s\n", experiments::fig5_chart(outcomes).c_str());

  std::printf("series (CSV):\ncase,ELPC_ms,Streamline_ms,Greedy_ms\n");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    auto cell = [&](const char* algo) {
      const auto& a = o.of(algo);
      return a.delay.feasible ? std::to_string(a.delay_ms()) : "NA";
    };
    std::printf("%zu,%s,%s,%s\n", i + 1, cell("ELPC").c_str(),
                cell("Streamline").c_str(), cell("Greedy").c_str());
  }
}

/// ELPC min-delay runtime vs problem scale (supports the O(n*|E|) claim).
void BM_ElpcMinDelay(benchmark::State& state) {
  const auto specs = workload::default_suite();
  const auto& spec = specs[static_cast<std::size_t>(state.range(0))];
  const workload::Scenario scenario = workload::build_scenario(spec);
  const mapping::Problem problem = scenario.problem();
  const core::ElpcMapper elpc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(elpc.min_delay(problem));
  }
  state.SetLabel(spec.name);
  state.counters["n_x_E"] = static_cast<double>(spec.modules * spec.links);
}
BENCHMARK(BM_ElpcMinDelay)->DenseRange(0, 19, 4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_series();
  return elpc::bench::run_registered_benchmarks(argc, argv);
}
