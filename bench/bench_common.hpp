#pragma once
// Shared scaffolding for the bench binaries: every bench first prints the
// reproduced paper artifact (table or figure) to stdout, then hands over
// to google-benchmark for the fine-grained runtime measurements that
// support Section 4.3's execution-time claims.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "experiments/registry.hpp"
#include "experiments/runner.hpp"
#include "util/thread_pool.hpp"
#include "workload/suite.hpp"

namespace elpc::bench {

/// Runs the full 20-case suite with the paper's three algorithms.
inline std::vector<experiments::CaseOutcome> run_default_suite() {
  util::ThreadPool pool;
  return experiments::run_suite(workload::default_suite(),
                                workload::SuiteConfig{},
                                experiments::RunnerOptions{}, pool);
}

/// Prints a banner so bench outputs are self-describing in logs.
inline void banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Standard tail: run google-benchmark on whatever the binary registered.
inline int run_registered_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace elpc::bench
