// E8 — ablations of the design choices DESIGN.md calls out:
//  1. the MLD term in the transport cost (include vs exclude d_{i,j});
//  2. strict no-reuse frame rate vs the grouped-reuse extension (the
//     paper's future-work case);
//  3. the visited-set check inside the frame-rate DP (on vs off);
//  4. Streamline's neediness metric (computation-only vs compute+comm).
// Each ablation re-runs the 20-case suite and reports aggregate deltas.

#include "bench_common.hpp"

#include "baselines/streamline.hpp"
#include "core/elpc.hpp"
#include "core/elpc_grouped.hpp"
#include "mapping/evaluator.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace elpc;

std::vector<workload::Scenario> suite_scenarios() {
  std::vector<workload::Scenario> scenarios;
  for (const auto& spec : workload::default_suite()) {
    scenarios.push_back(workload::build_scenario(spec));
  }
  return scenarios;
}

void ablate_mld(const std::vector<workload::Scenario>& scenarios) {
  bench::banner("A1: MLD term in the delay objective (Eq. 1 vs Sec. 2.2)");
  const core::ElpcMapper elpc;
  util::TextTable table(
      {"case", "delay w/ MLD (ms)", "delay w/o MLD (ms)", "MLD share %",
       "same mapping?"});
  for (const auto& s : scenarios) {
    const auto with = elpc.min_delay(s.problem({.include_link_delay = true}));
    const auto without =
        elpc.min_delay(s.problem({.include_link_delay = false}));
    table.add_row(
        {s.name, util::format_double(with.seconds * 1e3, 1),
         util::format_double(without.seconds * 1e3, 1),
         util::format_double(
             (1.0 - without.seconds / with.seconds) * 100.0, 2),
         with.mapping == without.mapping ? "yes" : "no"});
  }
  std::printf("%s\n", table.render().c_str());
}

void ablate_grouping(const std::vector<workload::Scenario>& scenarios) {
  bench::banner(
      "A2: frame rate — strict no-reuse vs grouped contiguous reuse");
  const core::ElpcMapper strict;
  const core::ElpcGroupedMapper grouped;
  util::TextTable table({"case", "strict fps", "grouped fps", "gain %"});
  std::size_t gains = 0;
  for (const auto& s : scenarios) {
    const mapping::Problem p = s.problem({.include_link_delay = false});
    const auto a = strict.max_frame_rate(p);
    const auto b = grouped.max_frame_rate(p);
    const double fa = a.feasible ? a.frame_rate() : 0.0;
    const double fb = b.feasible ? b.frame_rate() : 0.0;
    if (fb > fa * (1.0 + 1e-9)) {
      ++gains;
    }
    table.add_row({s.name, util::format_double(fa, 2),
                   util::format_double(fb, 2),
                   util::format_double(fa > 0 ? (fb / fa - 1) * 100 : 0, 1)});
  }
  std::printf("%s\ngrouping strictly improved %zu/%zu cases (the paper "
              "conjectured reuse could help; it never hurts by "
              "construction)\n\n",
              table.render().c_str(), gains, scenarios.size());
}

void ablate_visited_check(const std::vector<workload::Scenario>& scenarios) {
  bench::banner("A3: frame-rate DP visited-set bookkeeping (on vs off)");
  const core::ElpcMapper with_check;
  const core::ElpcMapper without_check(
      core::ElpcOptions{.framerate_visited_check = false});
  std::size_t invalid = 0;
  std::size_t feasible_both = 0;
  for (const auto& s : scenarios) {
    const mapping::Problem p = s.problem({.include_link_delay = false});
    const auto off = without_check.max_frame_rate(p);
    if (off.feasible) {
      // Without the check the DP may emit node-repeating "paths"; the
      // strict evaluator is the judge.
      const auto eval = mapping::evaluate_bottleneck(p, off.mapping, true);
      if (!eval.feasible) {
        ++invalid;
      } else {
        ++feasible_both;
      }
    }
  }
  std::printf("without the visited check: %zu/%zu cases returned a mapping "
              "that VIOLATES the no-reuse constraint; %zu stayed valid.\n"
              "(the check is what makes the heuristic implement the "
              "restricted problem at all)\n\n",
              invalid, scenarios.size(), feasible_both);
}

void ablate_streamline_metric(
    const std::vector<workload::Scenario>& scenarios) {
  bench::banner("A4: Streamline neediness metric (compute-only vs "
                "compute+comm)");
  const baselines::StreamlineMapper comp_only(
      baselines::StreamlineOptions{.comm_weight = 0.0});
  const baselines::StreamlineMapper balanced(
      baselines::StreamlineOptions{.comm_weight = 1.0});
  util::RunningStats delta;
  std::size_t both = 0;
  for (const auto& s : scenarios) {
    const mapping::Problem p = s.problem();
    const auto a = comp_only.min_delay(p);
    const auto b = balanced.min_delay(p);
    if (a.feasible && b.feasible) {
      ++both;
      delta.add((a.seconds - b.seconds) / b.seconds * 100.0);
    }
  }
  std::printf("cases where both variants feasible: %zu/%zu\n"
              "compute-only delay vs balanced delay: mean %+0.2f%%, "
              "range [%+.2f%%, %+.2f%%]\n\n",
              both, scenarios.size(), delta.mean(), delta.min(), delta.max());
}

void BM_GroupedFrameRate(benchmark::State& state) {
  const auto scenarios = suite_scenarios();
  const auto& s = scenarios[static_cast<std::size_t>(state.range(0))];
  const mapping::Problem p = s.problem({.include_link_delay = false});
  const core::ElpcGroupedMapper grouped;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grouped.max_frame_rate(p));
  }
  state.SetLabel(s.name);
}
BENCHMARK(BM_GroupedFrameRate)->Arg(0)->Arg(9)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto scenarios = suite_scenarios();
  ablate_mld(scenarios);
  ablate_grouping(scenarios);
  ablate_visited_check(scenarios);
  ablate_streamline_metric(scenarios);
  return elpc::bench::run_registered_benchmarks(argc, argv);
}
