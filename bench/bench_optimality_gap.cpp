// E7 — optimality-gap ablation.  Two claims from Section 3.1:
//  * the delay DP is optimal ("the final solution is optimal for a given
//    mapping problem") — verified against exhaustive search;
//  * the frame-rate heuristic's misses are "extremely rare" — quantified
//    as the fraction of small random instances where the heuristic fails
//    to find the exact exact-n-hop widest-path optimum.
// The google-benchmark section times the heuristic against the
// exponential exact searcher to show why the heuristic matters at all.

#include "bench_common.hpp"

#include "core/elpc.hpp"
#include "core/exhaustive.hpp"
#include "experiments/optimality.hpp"
#include "graph/generators.hpp"
#include "pipeline/generator.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace elpc;

void print_gap_study() {
  bench::banner("optimality gap vs exhaustive search (small instances)");
  experiments::GapStudyConfig config;
  config.instances = 300;
  const experiments::GapStudyResult r = experiments::run_gap_study(config);

  std::printf("instances: %zu (3-6 modules, 5-9 nodes, 70%% density)\n\n",
              r.instances);
  std::printf("min-delay DP vs exhaustive optimum:\n");
  std::printf("  both feasible     : %zu\n", r.delay_both_feasible);
  std::printf("  exact matches     : %zu\n", r.delay_matches);
  std::printf("  max relative gap  : %.2e  (must be ~0: the DP is optimal)\n\n",
              r.delay_max_rel_gap);
  std::printf("frame-rate heuristic vs exact n-hop widest path:\n");
  std::printf("  exact feasible    : %zu\n", r.framerate_exact_feasible);
  std::printf("  heuristic feasible: %zu\n", r.framerate_heuristic_feasible);
  std::printf("  optimum found     : %zu (%.1f%%)\n", r.framerate_matches,
              r.framerate_match_fraction() * 100.0);
  std::printf("  feasibility misses: %zu\n", r.framerate_misses);
  std::printf("  mean rel. gap     : %.3f%% (over suboptimal instances)\n",
              r.framerate_mean_rel_gap * 100.0);
  std::printf("  max rel. gap      : %.3f%%\n",
              r.framerate_max_rel_gap * 100.0);
  std::printf("\npaper's claim: heuristic misses are \"extremely rare\" -> "
              "%s\n",
              r.framerate_match_fraction() > 0.9 ? "supported"
                                                 : "NOT supported");
}

workload::Scenario gap_instance(std::size_t nodes) {
  util::Rng rng(99 + nodes);
  workload::Scenario s;
  s.pipeline = pipeline::random_pipeline(rng, std::min<std::size_t>(6, nodes),
                                         {});
  s.network = graph::random_connected_network(
      rng, nodes,
      static_cast<std::size_t>(0.7 * static_cast<double>(nodes * (nodes - 1))),
      {});
  s.source = 0;
  s.destination = nodes - 1;
  return s;
}

void BM_HeuristicFrameRate(benchmark::State& state) {
  const workload::Scenario s =
      gap_instance(static_cast<std::size_t>(state.range(0)));
  const mapping::Problem problem = s.problem({.include_link_delay = false});
  const core::ElpcMapper elpc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(elpc.max_frame_rate(problem));
  }
}
BENCHMARK(BM_HeuristicFrameRate)->Arg(7)->Arg(9)->Unit(benchmark::kMicrosecond);

void BM_ExactFrameRate(benchmark::State& state) {
  const workload::Scenario s =
      gap_instance(static_cast<std::size_t>(state.range(0)));
  const mapping::Problem problem = s.problem({.include_link_delay = false});
  const core::ExhaustiveMapper exact;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact.max_frame_rate(problem));
  }
}
BENCHMARK(BM_ExactFrameRate)->Arg(7)->Arg(9)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_gap_study();
  return elpc::bench::run_registered_benchmarks(argc, argv);
}
