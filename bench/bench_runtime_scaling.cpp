// E6 — supports the paper's Section 4.3 execution-time claim ("varies
// from milliseconds for small-scale problems to seconds for large-scale
// ones") and the quoted complexities: O(n*|E|) for ELPC, O(m*n^2) for
// Streamline (original), O(m*n) for Greedy.  Prints a wall-clock scaling
// table over a size sweep, then runs google-benchmark timers per
// algorithm at increasing scales so the growth curves can be read off
// directly.

#include "bench_common.hpp"

#include "core/elpc.hpp"
#include "core/kernels/framerate_kernel.hpp"
#include "experiments/scaling.hpp"
#include "graph/generators.hpp"
#include "pipeline/generator.hpp"
#include "util/file_io.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace elpc;

constexpr const char* kJsonPath = "BENCH_runtime_scaling.json";

/// Persists the sweep as the machine-readable perf trajectory future PRs
/// regress against: one record per (scale, algorithm) with the mean
/// per-objective milliseconds, plus the delta-driven re-solve dimension
/// as two pseudo-algorithm records per scale ("ELPC-resolve-full" /
/// "ELPC-resolve-incremental" — frame-rate-only by construction, so the
/// delay field is zero).  The nightly perf run uploads this document;
/// the regression gate only compares keys present in its reference.
void write_scaling_json(const std::vector<experiments::ScalingPoint>& points,
                        const std::vector<std::string>& names) {
  util::JsonArray records;
  for (const auto& p : points) {
    for (std::size_t a = 0; a < names.size(); ++a) {
      util::Json record = util::JsonObject{};
      record.set("modules", p.modules);
      record.set("nodes", p.nodes);
      record.set("links", p.links);
      record.set("algorithm", names[a]);
      record.set("min_delay_mean_ms", p.min_delay_ms[a]);
      record.set("max_frame_rate_mean_ms", p.max_frame_rate_ms[a]);
      record.set("total_mean_ms", p.min_delay_ms[a] + p.max_frame_rate_ms[a]);
      records.push_back(std::move(record));
    }
    for (const auto& [name, resolve_ms] :
         {std::pair<const char*, double>{"ELPC-resolve-full",
                                         p.elpc_resolve_full_ms},
          {"ELPC-resolve-incremental", p.elpc_resolve_incremental_ms}}) {
      util::Json record = util::JsonObject{};
      record.set("modules", p.modules);
      record.set("nodes", p.nodes);
      record.set("links", p.links);
      record.set("algorithm", name);
      record.set("min_delay_mean_ms", 0.0);
      record.set("max_frame_rate_mean_ms", resolve_ms);
      record.set("total_mean_ms", resolve_ms);
      records.push_back(std::move(record));
    }
  }
  util::Json doc = util::JsonObject{};
  doc.set("bench", "runtime_scaling");
  doc.set("unit", "milliseconds");
  doc.set("records", util::Json(std::move(records)));
  util::write_text_file(kJsonPath, doc.dump(2) + "\n");
  std::printf("wrote %s\n", kJsonPath);
}

void print_scaling() {
  bench::banner("algorithm runtime scaling (mean of 3 runs, both objectives)");
  experiments::ScalingConfig config;
  const auto points = experiments::run_scaling_study(config);
  util::TextTable table({"modules", "nodes", "links", "ELPC ms",
                         "Streamline ms", "Greedy ms"});
  for (const auto& p : points) {
    const auto total = [&p](std::size_t a) {
      return p.min_delay_ms[a] + p.max_frame_rate_ms[a];
    };
    table.add_row({std::to_string(p.modules), std::to_string(p.nodes),
                   std::to_string(p.links), util::format_double(total(0), 3),
                   util::format_double(total(1), 3),
                   util::format_double(total(2), 3)});
  }
  std::printf("%s\n", table.render().c_str());

  bench::banner(
      "single-link delta re-solve (ELPC frame rate): full recompute vs "
      "checkpoint column reuse — bit-identical answers");
  util::TextTable resolve_table(
      {"modules", "nodes", "full ms", "incremental ms", "speedup"});
  for (const auto& p : points) {
    const double speedup =
        p.elpc_resolve_incremental_ms > 0.0
            ? p.elpc_resolve_full_ms / p.elpc_resolve_incremental_ms
            : 0.0;
    resolve_table.add_row(
        {std::to_string(p.modules), std::to_string(p.nodes),
         util::format_double(p.elpc_resolve_full_ms, 3),
         util::format_double(p.elpc_resolve_incremental_ms, 3),
         util::format_double(speedup, 2) + "x"});
  }
  std::printf("%s\n", resolve_table.render().c_str());
  write_scaling_json(points, experiments::scaling_algorithm_names());
}

workload::Scenario make_scaled(std::size_t modules, std::size_t nodes) {
  util::Rng rng(1234 + modules * 7 + nodes);
  const std::size_t links = std::min(
      nodes * (nodes - 1),
      static_cast<std::size_t>(0.6 * static_cast<double>(nodes) *
                               static_cast<double>(nodes - 1)));
  workload::Scenario s;
  s.pipeline = pipeline::random_pipeline(rng, modules, {});
  s.network = graph::random_connected_network(rng, nodes,
                                              std::max(links, nodes), {});
  s.source = 0;
  s.destination = nodes - 1;
  return s;
}

void BM_Algorithm(benchmark::State& state, const std::string& name) {
  const auto modules = static_cast<std::size_t>(state.range(0));
  const auto nodes = static_cast<std::size_t>(state.range(1));
  const workload::Scenario scenario = make_scaled(modules, nodes);
  const mapping::Problem problem = scenario.problem();
  const mapping::MapperPtr mapper = experiments::make_mapper(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper->min_delay(problem));
    benchmark::DoNotOptimize(mapper->max_frame_rate(problem));
  }
  state.counters["modules"] = static_cast<double>(modules);
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["links"] = static_cast<double>(scenario.network.link_count());
}

/// Per-kernel dimension: the frame-rate DP alone (the only code the row
/// kernels serve), one benchmark per kernel this machine can run, at
/// the same scale points as the algorithm sweep.  Comparing the largest
/// point across kernels is the headline speedup number; the kernels are
/// bit-identical (KernelParity tests + the CI parity job), so any delta
/// is pure throughput.
void BM_ElpcFramerateKernel(benchmark::State& state,
                            core::kernels::Kind kind) {
  const auto modules = static_cast<std::size_t>(state.range(0));
  const auto nodes = static_cast<std::size_t>(state.range(1));
  const workload::Scenario scenario = make_scaled(modules, nodes);
  const mapping::Problem problem = scenario.problem();
  core::ElpcOptions options;
  options.framerate_kernel = kind;
  const core::ElpcMapper mapper(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.max_frame_rate(problem));
  }
  state.counters["modules"] = static_cast<double>(modules);
  state.counters["nodes"] = static_cast<double>(nodes);
}

/// Delta re-solve dimension under the google-benchmark timers: one
/// single-link bandwidth flip + frame-rate re-solve per iteration,
/// either from scratch or through the retained column checkpoint.  The
/// two variants produce bit-identical results (Incremental* tests + the
/// CI incremental-parity job); the ratio at the largest point is the
/// headline incremental speedup.
void BM_ElpcDeltaResolve(benchmark::State& state, bool incremental) {
  const auto modules = static_cast<std::size_t>(state.range(0));
  const auto nodes = static_cast<std::size_t>(state.range(1));
  workload::Scenario scenario = make_scaled(modules, nodes);
  scenario.network.finalize();
  const mapping::Problem problem = scenario.problem();
  const graph::Edge edge = scenario.network.out_edges(nodes / 2).front();
  std::vector<graph::LinkUpdate> updates = {
      graph::LinkUpdate{edge.from, edge.to, edge.attr}};
  std::size_t flips = 0;
  const auto flip = [&]() {
    updates[0].attr.bandwidth_mbps =
        edge.attr.bandwidth_mbps * (flips++ % 2 == 0 ? 0.5 : 1.0);
    scenario.network.apply_link_updates(updates);
  };

  core::IncrementalCheckpoint checkpoint;
  core::ElpcOptions options;
  if (incremental) {
    options.checkpoint = &checkpoint;
  }
  const core::ElpcMapper capture_mapper(options);
  (void)capture_mapper.max_frame_rate(problem);  // warm-up / capture
  if (incremental) {
    options.delta = &updates;
  }
  const core::ElpcMapper mapper(options);
  for (auto _ : state) {
    flip();
    benchmark::DoNotOptimize(mapper.max_frame_rate(problem));
  }
  state.counters["modules"] = static_cast<double>(modules);
  state.counters["nodes"] = static_cast<double>(nodes);
}

void register_benchmarks() {
  for (const bool incremental : {false, true}) {
    auto* b = benchmark::RegisterBenchmark(
        incremental ? "BM_ELPC_delta_resolve/incremental"
                    : "BM_ELPC_delta_resolve/full",
        [incremental](benchmark::State& state) {
          BM_ElpcDeltaResolve(state, incremental);
        });
    b->Args({5, 10})->Args({10, 25})->Args({20, 100})->Args({40, 400});
    b->Unit(benchmark::kMillisecond);
  }
  for (const char* name : {"ELPC", "Streamline", "Greedy"}) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("BM_") + name).c_str(),
        [name](benchmark::State& state) { BM_Algorithm(state, name); });
    b->Args({5, 10})->Args({10, 25})->Args({20, 100})->Args({40, 400});
    b->Unit(benchmark::kMillisecond);
  }
  for (const core::kernels::Kind kind : core::kernels::available_kernels()) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("BM_ELPC_framerate_kernel/") +
         core::kernels::kind_name(kind))
            .c_str(),
        [kind](benchmark::State& state) {
          BM_ElpcFramerateKernel(state, kind);
        });
    b->Args({5, 10})->Args({10, 25})->Args({20, 100})->Args({40, 400});
    b->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_scaling();
  register_benchmarks();
  return elpc::bench::run_registered_benchmarks(argc, argv);
}
