// E5 — reproduces the paper's Fig. 6: maximum frame rate over the 20
// evaluation cases for the three algorithms.  The observations to
// reproduce: ELPC is the top curve (almost) everywhere, and — unlike the
// delay series — frame rate shows no monotone trend in problem size,
// because it is the reciprocal of a single bottleneck term rather than a
// sum over the path.

#include "bench_common.hpp"

#include "core/elpc.hpp"
#include "experiments/report.hpp"

namespace {

using namespace elpc;

void print_series() {
  bench::banner("Fig. 6 — maximum frame rate across the 20 cases");
  const std::vector<experiments::CaseOutcome> outcomes =
      bench::run_default_suite();
  std::printf("%s\n", experiments::fig6_chart(outcomes).c_str());

  std::printf("series (CSV):\ncase,ELPC_fps,Streamline_fps,Greedy_fps\n");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    auto cell = [&](const char* algo) {
      const auto& a = o.of(algo);
      return a.framerate.feasible ? std::to_string(a.fps()) : "NA";
    };
    std::printf("%zu,%s,%s,%s\n", i + 1, cell("ELPC").c_str(),
                cell("Streamline").c_str(), cell("Greedy").c_str());
  }
}

/// ELPC frame-rate heuristic runtime vs problem scale (the visited-set
/// bookkeeping makes it heavier than the delay DP).
void BM_ElpcFrameRate(benchmark::State& state) {
  const auto specs = workload::default_suite();
  const auto& spec = specs[static_cast<std::size_t>(state.range(0))];
  const workload::Scenario scenario = workload::build_scenario(spec);
  const mapping::Problem problem =
      scenario.problem({.include_link_delay = false});
  const core::ElpcMapper elpc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(elpc.max_frame_rate(problem));
  }
  state.SetLabel(spec.name);
}
BENCHMARK(BM_ElpcFrameRate)->DenseRange(0, 19, 4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_series();
  return elpc::bench::run_registered_benchmarks(argc, argv);
}
