// E9 — validates the analytic cost models (the basis of every number in
// Figs. 2/5/6) against discrete-event execution:
//  * interactive: a single dataset's simulated end-to-end latency must
//    equal Eq. 1 exactly;
//  * streaming: the simulated steady-state output rate must match
//    1 / Eq. 2-bottleneck (serialization-only transport term).
// Run on the first ten suite cases plus the illustrative instance.
// google-benchmark times the simulator itself (events/second).

#include "bench_common.hpp"

#include <cmath>

#include "core/elpc.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/small_case.hpp"

namespace {

using namespace elpc;

void print_validation() {
  bench::banner("analytic model vs discrete-event execution");
  const core::ElpcMapper elpc;

  std::vector<workload::Scenario> scenarios;
  scenarios.push_back(workload::small_case());
  const auto specs = workload::default_suite();
  for (std::size_t i = 0; i < 10; ++i) {
    scenarios.push_back(workload::build_scenario(specs[i]));
  }

  util::TextTable table({"case", "analytic delay ms", "simulated ms",
                         "analytic fps", "simulated fps", "max err %"});
  double worst = 0.0;
  for (const auto& s : scenarios) {
    // Interactive: one dataset, full transport model (MLD included).
    const mapping::Problem dp = s.problem({.include_link_delay = true});
    const auto delay = elpc.min_delay(dp);
    const sim::SimReport one =
        sim::simulate(dp, delay.mapping, sim::SimConfig{.frames = 1});
    const double delay_err =
        std::abs(one.first_frame_latency_s() / delay.seconds - 1.0);

    // Streaming: saturated source, serialization-only transport term.
    const mapping::Problem fp = s.problem({.include_link_delay = false});
    const auto rate = elpc.max_frame_rate(fp);
    double rate_err = 0.0;
    double sim_fps = 0.0;
    if (rate.feasible) {
      const sim::SimReport stream = sim::simulate(
          fp, rate.mapping, sim::SimConfig{.frames = 400});
      sim_fps = stream.throughput_fps;
      rate_err = std::abs(sim_fps / rate.frame_rate() - 1.0);
    }
    const double err = std::max(delay_err, rate_err) * 100.0;
    worst = std::max(worst, err);
    table.add_row({s.name,
                   util::format_double(delay.seconds * 1e3, 2),
                   util::format_double(one.first_frame_latency_s() * 1e3, 2),
                   util::format_double(rate.feasible ? rate.frame_rate() : 0, 2),
                   util::format_double(sim_fps, 2),
                   util::format_double(err, 4)});
  }
  std::printf("%s\nworst relative error: %.4f%% -> analytic models %s the "
              "simulator\n",
              table.render().c_str(), worst,
              worst < 1.0 ? "MATCH" : "DO NOT MATCH");
}

void BM_SimulateStream(benchmark::State& state) {
  const workload::Scenario s = workload::small_case();
  const mapping::Problem p = s.problem({.include_link_delay = false});
  const auto rate = core::ElpcMapper().max_frame_rate(p);
  const auto frames = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate(p, rate.mapping, sim::SimConfig{.frames = frames}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frames));
}
BENCHMARK(BM_SimulateStream)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_validation();
  return elpc::bench::run_registered_benchmarks(argc, argv);
}
