// E2/E3 — reproduces the paper's Figs. 3 and 4: the mapping ELPC selects
// on the small illustrative instance (5 modules, 6 nodes) for each
// objective, with the per-stage cost breakdown that makes the figures'
// story visible in text:
//   Fig. 3 — minimum delay: modules group (first two on the source node,
//            the two heavy middle stages on the fast compute node);
//   Fig. 4 — maximum frame rate: a simple path of five distinct nodes,
//            with the bottleneck location called out.

#include "bench_common.hpp"

#include "core/elpc.hpp"
#include "mapping/evaluator.hpp"
#include "workload/small_case.hpp"

namespace {

using namespace elpc;

void print_breakdown(const workload::Scenario& scenario,
                     const mapping::Problem& problem,
                     const mapping::Mapping& mapping) {
  const pipeline::CostModel model = problem.model();
  const std::size_t n = scenario.pipeline.module_count();
  double worst = 0.0;
  std::string worst_where;
  for (std::size_t j = 1; j < n; ++j) {
    const graph::NodeId prev = mapping.node_of(j - 1);
    const graph::NodeId cur = mapping.node_of(j);
    if (prev != cur) {
      const double t = model.input_transport_time(j, prev, cur);
      std::printf("    link %zu -> %zu : transfer %5.1f Mb   %7.2f ms\n",
                  prev, cur, scenario.pipeline.input_mb(j), t * 1e3);
      if (t > worst) {
        worst = t;
        worst_where = "link " + std::to_string(prev) + " -> " +
                      std::to_string(cur);
      }
    }
    const double c = model.computing_time(j, cur);
    std::printf("    node %zu      : %-14s          %7.2f ms\n", cur,
                scenario.pipeline.module(j).name.c_str(), c * 1e3);
    if (c > worst) {
      worst = c;
      worst_where = "node " + std::to_string(cur) + " (" +
                    scenario.pipeline.module(j).name + ")";
    }
  }
  std::printf("    worst single term: %s (%.2f ms)\n", worst_where.c_str(),
              worst * 1e3);
}

void print_paths() {
  const workload::Scenario scenario = workload::small_case();
  const core::ElpcMapper elpc;

  bench::banner("small instance (cf. paper Figs. 3/4)");
  std::printf("pipeline: %s\n", scenario.pipeline.to_string().c_str());
  std::printf("network : %zu nodes, %zu directed links; source=node%zu, "
              "destination=node%zu\n",
              scenario.network.node_count(), scenario.network.link_count(),
              scenario.source, scenario.destination);

  bench::banner("Fig. 3 — optimal path, minimum end-to-end delay");
  {
    const mapping::Problem problem = scenario.problem();
    const mapping::MapResult r = elpc.min_delay(problem);
    std::printf("  mapping : %s\n", r.mapping.to_string().c_str());
    std::printf("  path    : %s\n",
                r.mapping.group_path().to_string().c_str());
    std::printf("  delay   : %.1f ms\n", r.seconds * 1e3);
    print_breakdown(scenario, problem, r.mapping);
  }

  bench::banner("Fig. 4 — optimal path, maximum frame rate");
  {
    const mapping::Problem problem =
        scenario.problem({.include_link_delay = false});
    const mapping::MapResult r = elpc.max_frame_rate(problem);
    std::printf("  mapping : %s\n", r.mapping.to_string().c_str());
    std::printf("  path    : %s (simple: %s)\n",
                r.mapping.group_path().to_string().c_str(),
                r.mapping.group_path().is_simple() ? "yes" : "no");
    std::printf("  rate    : %.2f frames/s (bottleneck %.2f ms)\n",
                r.frame_rate(), r.seconds * 1e3);
    print_breakdown(scenario, problem, r.mapping);
  }
}

void BM_ElpcMinDelaySmall(benchmark::State& state) {
  const workload::Scenario scenario = workload::small_case();
  const mapping::Problem problem = scenario.problem();
  const core::ElpcMapper elpc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(elpc.min_delay(problem));
  }
}
BENCHMARK(BM_ElpcMinDelaySmall)->Unit(benchmark::kMicrosecond);

void BM_ElpcFrameRateSmall(benchmark::State& state) {
  const workload::Scenario scenario = workload::small_case();
  const mapping::Problem problem =
      scenario.problem({.include_link_delay = false});
  const core::ElpcMapper elpc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(elpc.max_frame_rate(problem));
  }
}
BENCHMARK(BM_ElpcFrameRateSmall)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_paths();
  return elpc::bench::run_registered_benchmarks(argc, argv);
}
